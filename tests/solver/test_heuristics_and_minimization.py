"""Decision-heuristic variants and learned-clause minimization."""

import pytest

from repro.checker import BreadthFirstChecker, DepthFirstChecker
from repro.cnf import Assignment, CnfFormula
from repro.solver import SolverConfig, solve_formula
from repro.solver.decision import (
    JeroslowWangHeuristic,
    RandomHeuristic,
    StaticOrderHeuristic,
    make_decision_heuristic,
)
from repro.solver.reference import reference_is_satisfiable
from repro.trace import InMemoryTraceWriter

from tests.conftest import pigeonhole, random_3sat

HEURISTICS = ["vsids", "static", "random", "jeroslow-wang"]


@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_all_heuristics_complete_and_correct(heuristic):
    config = SolverConfig(decision_heuristic=heuristic)
    assert solve_formula(pigeonhole(5, 4), config).is_unsat
    formula = random_3sat(15, 55, seed=3)
    result = solve_formula(formula, SolverConfig(decision_heuristic=heuristic))
    assert result.is_sat == reference_is_satisfiable(formula)


@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_all_heuristics_produce_checkable_traces(heuristic):
    formula = pigeonhole(5, 4)
    writer = InMemoryTraceWriter()
    result = solve_formula(
        formula, SolverConfig(decision_heuristic=heuristic), trace_writer=writer
    )
    assert result.is_unsat
    assert DepthFirstChecker(formula, writer.to_trace()).check().verified


def test_unknown_heuristic_rejected():
    with pytest.raises(ValueError):
        SolverConfig(decision_heuristic="oracle")
    with pytest.raises(ValueError):
        make_decision_heuristic("oracle", 3, None, SolverConfig())


class TestIndividualHeuristics:
    def test_static_order_picks_lowest_free(self):
        heuristic = StaticOrderHeuristic(4)
        assignment = Assignment(4)
        assignment.assign(1)
        assert abs(heuristic.pick_branch(assignment)) == 2

    def test_static_exhausted(self):
        heuristic = StaticOrderHeuristic(1)
        assignment = Assignment(1)
        assignment.assign(1)
        assert heuristic.pick_branch(assignment) is None

    def test_random_is_seeded(self):
        picks = []
        for _ in range(2):
            heuristic = RandomHeuristic(20, seed=4)
            assignment = Assignment(20)
            picks.append([heuristic.pick_branch(assignment) for _ in range(5)])
        assert picks[0] == picks[1]

    def test_jw_prefers_short_clause_variables(self):
        # x1 appears in a unit clause (weight 1/2); x2 only in a long one.
        clauses = [[1], [2, 3, 4, 5]]
        heuristic = JeroslowWangHeuristic(5, clauses)
        assignment = Assignment(5)
        assert abs(heuristic.pick_branch(assignment)) == 1

    def test_jw_polarity_follows_scores(self):
        clauses = [[-1, 2], [-1, 3], [1, 2, 3]]
        heuristic = JeroslowWangHeuristic(3, clauses)
        assignment = Assignment(3)
        assert heuristic.pick_branch(assignment) == -1  # negative phase scores higher


class TestMinimization:
    def test_minimization_shrinks_or_matches_learned_lengths(self):
        formula = pigeonhole(6, 5)
        base = solve_formula(formula, SolverConfig(minimize_learned=False))
        minimized = solve_formula(formula, SolverConfig(minimize_learned=True))
        assert base.is_unsat and minimized.is_unsat
        # Minimization prunes the search: never more conflicts on PHP.
        assert minimized.stats.conflicts <= base.stats.conflicts

    @pytest.mark.parametrize("seed", range(5))
    def test_minimized_traces_check_on_random_unsat(self, seed):
        formula = random_3sat(20, 130, seed=seed)
        writer = InMemoryTraceWriter()
        result = solve_formula(
            formula, SolverConfig(minimize_learned=True, seed=seed), trace_writer=writer
        )
        if not result.is_unsat:
            pytest.skip("instance happened to be SAT")
        trace = writer.to_trace()
        assert DepthFirstChecker(formula, trace).check().verified
        assert BreadthFirstChecker(formula, trace).check().verified

    def test_minimization_records_extra_sources(self):
        formula = pigeonhole(6, 5)
        plain_writer = InMemoryTraceWriter()
        solve_formula(formula, SolverConfig(minimize_learned=False), trace_writer=plain_writer)
        mini_writer = InMemoryTraceWriter()
        solve_formula(formula, SolverConfig(minimize_learned=True), trace_writer=mini_writer)
        plain_avg = _average_sources(plain_writer)
        mini_avg = _average_sources(mini_writer)
        # Minimization trades shorter clauses for more recorded resolutions.
        assert mini_avg >= plain_avg

    def test_minimization_correct_on_sat(self):
        formula = random_3sat(15, 55, seed=9)
        result = solve_formula(formula, SolverConfig(minimize_learned=True))
        assert result.is_sat == reference_is_satisfiable(formula)


def _average_sources(writer: InMemoryTraceWriter) -> float:
    trace = writer.to_trace()
    if not trace.learned:
        return 0.0
    return sum(len(r.sources) for r in trace.learned.values()) / len(trace.learned)
