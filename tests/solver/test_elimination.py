"""NiVER-style variable elimination: soundness, traces, model repair."""

import pytest

from repro.checker import BreadthFirstChecker, DepthFirstChecker, check_model
from repro.cnf import CnfFormula
from repro.solver import Solver, SolverConfig, solve_formula
from repro.solver.database import ClauseDatabase
from repro.solver.elimination import (
    EliminationRecord,
    VariableEliminator,
    reconstruct_model,
)
from repro.solver.reference import reference_is_satisfiable
from repro.trace import InMemoryTraceWriter

from tests.conftest import pigeonhole, random_3sat


def _ve_config(**kwargs):
    return SolverConfig(preprocess_elimination=True, **kwargs)


class TestEliminatorUnit:
    def test_pure_literals_cascade_away(self):
        # Vars 1 and 3 are pure: zero-resolvent eliminations that cascade
        # until nothing is left (the formula is trivially satisfiable).
        db = ClauseDatabase.from_formula(CnfFormula(3, [[1, 2], [-2, 3]]))
        eliminator = VariableEliminator(db)
        result = eliminator.run(is_assigned=lambda var: False)
        assert result.stats.eliminated_vars >= 2
        assert not db.lits  # everything eliminated

    def test_eliminates_a_two_phase_variable(self):
        # Every variable occurs in both phases; the cheapest elimination
        # (var 1 or var 3: one resolvent) must produce a real resolvent.
        formula = CnfFormula(3, [[1, 2], [-1, 2], [-2, 3], [-2, -3]])
        db = ClauseDatabase.from_formula(formula)
        result = VariableEliminator(db).run(is_assigned=lambda var: False)
        assert result.stats.added_resolvents >= 1
        assert result.stats.eliminated_vars >= 1

    def test_respects_occurrence_cap(self):
        formula = CnfFormula(5, [[1, v] for v in range(2, 6)] + [[-1, v] for v in range(2, 6)])
        db = ClauseDatabase.from_formula(formula)
        eliminator = VariableEliminator(db, max_occurrences=2)
        result = eliminator.run(is_assigned=lambda var: False)
        assert all(record.var != 1 for record in result.records)

    def test_never_grows_the_formula(self):
        formula = random_3sat(15, 60, seed=4)
        db = ClauseDatabase.from_formula(formula)
        literals_before = sum(len(lits) for lits in db.lits.values())
        VariableEliminator(db).run(is_assigned=lambda var: False)
        literals_after = sum(len(lits) for lits in db.lits.values())
        assert literals_after <= literals_before

    def test_empty_resolvent_reports_conflict(self):
        db = ClauseDatabase.from_formula(CnfFormula(1, [[1], [-1]]))
        result = VariableEliminator(db).run(is_assigned=lambda var: False)
        assert result.conflict_cid is not None

    def test_trace_records_resolvents_with_two_sources(self):
        formula = CnfFormula(3, [[1, 2], [-1, 2], [-2, 3], [-2, -3]])
        db = ClauseDatabase.from_formula(formula)
        writer = InMemoryTraceWriter()
        writer.header(3, 4)
        VariableEliminator(db, trace=writer).run(is_assigned=lambda var: False)
        trace = writer.to_trace()
        assert trace.num_learned >= 1
        assert all(len(r.sources) == 2 for r in trace.learned.values())

    def test_tautological_resolvents_skipped(self):
        # Resolving on x yields (a | -a): tautology, must not be added.
        db = ClauseDatabase.from_formula(CnfFormula(2, [[1, 2], [-2, -1]]))
        result = VariableEliminator(db).run(is_assigned=lambda var: False)
        assert result.stats.eliminated_vars >= 1
        assert all(len(lits) > 0 for lits in db.lits.values())


class TestModelReconstruction:
    def test_forced_value(self):
        # x eliminated from (x | a)(−x | b); model a=False forces x=True.
        records = [EliminationRecord(var=1, removed_clauses=[[1, 2], [-1, 3]])]
        model = {2: False, 3: True}
        reconstruct_model(model, records)
        assert model[1] is True

    def test_unforced_defaults_false(self):
        records = [EliminationRecord(var=1, removed_clauses=[[1, 2]])]
        model = {2: True}
        reconstruct_model(model, records)
        assert model[1] is False

    def test_reverse_order_dependencies(self):
        # y eliminated first, then x; x's value feeds y's reconstruction.
        records = [
            EliminationRecord(var=2, removed_clauses=[[2, -1]]),  # y | ~x
            EliminationRecord(var=1, removed_clauses=[[1, 3]]),  # x | a
        ]
        model = {3: False}
        reconstruct_model(model, records)
        assert model[1] is True  # forced by (x | a), a False
        assert model[2] is True  # forced by (y | ~x) once x is True


class TestSolverIntegration:
    @pytest.mark.parametrize("seed", range(10))
    def test_correctness_preserved(self, seed):
        formula = random_3sat(14, 58, seed=seed)
        expected = reference_is_satisfiable(formula)
        result = solve_formula(formula, _ve_config(seed=seed))
        assert result.is_sat == expected
        if result.is_sat:
            assert check_model(formula, result.model)

    def test_unsat_traces_still_check(self):
        formula = pigeonhole(5, 4)
        writer = InMemoryTraceWriter()
        result = solve_formula(formula, _ve_config(), trace_writer=writer)
        assert result.is_unsat
        trace = writer.to_trace()
        assert DepthFirstChecker(formula, trace).check().verified
        assert BreadthFirstChecker(formula, trace).check().verified

    def test_ve_only_refutation_checks(self):
        # A formula VE refutes outright (empty resolvent during preprocess).
        formula = CnfFormula(2, [[1, 2], [-1, 2], [1, -2], [-1, -2]])
        writer = InMemoryTraceWriter()
        result = solve_formula(formula, _ve_config(), trace_writer=writer)
        assert result.is_unsat
        assert DepthFirstChecker(formula, writer.to_trace()).check().verified

    def test_eliminated_vars_not_branched(self):
        formula = CnfFormula(3, [[1, 2], [-2, 3]])
        solver = Solver(formula, _ve_config())
        result = solver.solve()
        assert result.is_sat
        assert check_model(formula, result.model)
        assert solver.elimination_records  # something was eliminated

    @pytest.mark.parametrize("seed", range(6))
    def test_sound_under_aggressive_clause_deletion(self, seed):
        # Preprocessing resolvents replace originals; clause deletion must
        # never evict them (they are marked protected in the database).
        formula = random_3sat(16, 62, seed=seed)
        expected = reference_is_satisfiable(formula)
        config = _ve_config(seed=seed, min_learned_cap=5, max_learned_factor=0.0)
        result = solve_formula(formula, config)
        assert result.is_sat == expected
        if result.is_sat:
            assert check_model(formula, result.model)

    def test_resolvents_marked_protected(self):
        formula = CnfFormula(3, [[1, 2], [-1, 2], [-2, 3], [-2, -3]])
        solver = Solver(formula, _ve_config())
        solver.solve()
        if solver.elimination_records:
            assert solver.db.protected <= solver.db.learned_ids | set()

    def test_elimination_counts_in_stats(self):
        formula = random_3sat(20, 70, seed=2)
        solver = Solver(formula, _ve_config(seed=2))
        solver.solve()
        if solver.elimination_records:
            assert solver.vsids.banned == {
                record.var for record in solver.elimination_records
            }
