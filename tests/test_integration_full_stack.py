"""Full-stack integration: every solver feature on at once, deep proofs,
and end-to-end pipelines across file formats."""

import sys

import pytest

from repro.checker import (
    BreadthFirstChecker,
    DepthFirstChecker,
    HybridChecker,
    RupChecker,
    DrupWriter,
    check_model,
)
from repro.cnf import CnfFormula, parse_dimacs_file, write_dimacs_file
from repro.solver import Solver, SolverConfig, solve_formula
from repro.solver.reference import reference_is_satisfiable
from repro.trace import (
    AsciiTraceWriter,
    BinaryTraceWriter,
    InMemoryTraceWriter,
    analyze_trace,
    load_trace,
)
from repro.trace.trim import trim_trace

from tests.conftest import pigeonhole, random_3sat, xor_chain

EVERYTHING_ON = dict(
    minimize_learned=True,
    preprocess_elimination=True,
    preprocess_blocked_clause=True,
    restart_policy="luby",
    luby_unit=8,
    min_learned_cap=30,
    max_learned_factor=0.0,
    random_decision_freq=0.05,
)


@pytest.mark.parametrize("seed", range(10))
def test_all_features_on_random_instances(seed):
    formula = random_3sat(16, 64, seed=seed)
    expected = reference_is_satisfiable(formula)
    writer = InMemoryTraceWriter()
    result = solve_formula(
        formula, SolverConfig(seed=seed, **EVERYTHING_ON), trace_writer=writer
    )
    assert result.is_sat == expected
    if result.is_sat:
        assert check_model(formula, result.model)
    else:
        trace = writer.to_trace()
        assert DepthFirstChecker(formula, trace).check().verified
        assert BreadthFirstChecker(formula, trace).check().verified
        assert HybridChecker(formula, trace).check().verified


def test_all_features_on_php():
    formula = pigeonhole(6, 5)
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(**EVERYTHING_ON), trace_writer=writer)
    assert result.is_unsat
    trace = writer.to_trace()
    for checker in (
        DepthFirstChecker(formula, trace),
        BreadthFirstChecker(formula, trace),
        HybridChecker(formula, trace),
    ):
        assert checker.check().verified


def test_deep_chain_proof_no_recursion_limit():
    """A long implication chain produces a deep resolution DAG; the
    depth-first checker must be iterative (Python's default recursion
    limit would kill a naive implementation)."""
    length = 3000
    formula = xor_chain(length, parity=True)
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, trace_writer=writer)
    assert result.is_unsat
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(200)
    try:
        report = DepthFirstChecker(formula, writer.to_trace()).check()
    finally:
        sys.setrecursionlimit(old_limit)
    assert report.verified
    assert report.resolutions >= length - 2  # the chain really was walked


def test_full_file_pipeline(tmp_path):
    """DIMACS in -> solve (binary trace + DRUP) -> all checkers -> trim ->
    re-check -> stats, everything through real files."""
    formula = pigeonhole(5, 4)
    cnf_path = tmp_path / "instance.cnf"
    write_dimacs_file(formula, cnf_path, comment="integration pipeline")
    loaded = parse_dimacs_file(cnf_path)

    trace_path = tmp_path / "proof.rtb"
    drup_path = tmp_path / "proof.drup"
    result = Solver(
        loaded,
        SolverConfig(),
        trace_writer=BinaryTraceWriter(trace_path),
        drup_writer=DrupWriter(drup_path),
    ).solve()
    assert result.is_unsat

    trace = load_trace(trace_path)
    assert DepthFirstChecker(loaded, trace).check().verified
    assert BreadthFirstChecker(loaded, trace_path).check().verified
    assert HybridChecker(loaded, trace_path).check().verified
    assert RupChecker(loaded, drup_path).check().verified

    stats = analyze_trace(trace_path)
    assert stats.num_learned == result.stats.learned_clauses

    trimmed = trim_trace(loaded, trace)
    assert BreadthFirstChecker(loaded, trimmed.trace).check().verified


def test_scrambled_instance_cross_formats(tmp_path):
    """Scramble an instance, solve with everything on, check from both
    trace encodings."""
    from repro.cnf.transforms import scramble

    formula = scramble(pigeonhole(5, 4), seed=3)
    ascii_path = tmp_path / "t.trace"
    binary_path = tmp_path / "t.rtb"
    for path, writer_cls in ((ascii_path, AsciiTraceWriter), (binary_path, BinaryTraceWriter)):
        result = solve_formula(
            formula, SolverConfig(**EVERYTHING_ON), trace_writer=writer_cls(path)
        )
        assert result.is_unsat
    assert BreadthFirstChecker(formula, ascii_path).check().verified
    assert BreadthFirstChecker(formula, binary_path).check().verified
