"""Benchmark generators: known SAT/UNSAT facts and structural properties."""

import pytest

from repro.generators import (
    RoutingNet,
    channel_routing,
    clique_coloring,
    dense_channel_instance,
    graph_coloring,
    grid_planning,
    parity_chain,
    path_planning,
    pigeonhole,
    random_ksat,
    random_parity,
    swap_planning,
)
from repro.solver import solve_formula
from repro.solver.reference import reference_is_satisfiable


class TestPigeonhole:
    def test_unsat_when_too_few_holes(self):
        assert solve_formula(pigeonhole(4, 3)).is_unsat

    def test_sat_when_holes_suffice(self):
        assert solve_formula(pigeonhole(3, 3)).is_sat
        assert solve_formula(pigeonhole(3, 5)).is_sat

    def test_validation(self):
        with pytest.raises(ValueError):
            pigeonhole(0, 1)

    def test_clause_count(self):
        formula = pigeonhole(4, 3)
        assert formula.num_clauses == 4 + 3 * (4 * 3 // 2)


class TestRandomKsat:
    def test_deterministic_by_seed(self):
        a = random_ksat(20, 80, seed=5)
        b = random_ksat(20, 80, seed=5)
        assert [c.literals for c in a] == [c.literals for c in b]

    def test_distinct_variables_per_clause(self):
        formula = random_ksat(10, 50, k=3, seed=1)
        for clause in formula:
            assert len(clause.variables()) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            random_ksat(2, 5, k=3)
        with pytest.raises(ValueError):
            random_ksat(5, 5, k=0)


class TestParity:
    def test_chain_unsat(self):
        formula = parity_chain(8)
        assert not reference_is_satisfiable(formula)

    def test_chain_sat_variant(self):
        assert reference_is_satisfiable(parity_chain(8, satisfiable=True))

    def test_random_parity_overconstrained_unsat(self):
        formula = random_parity(10, 14, seed=0)
        assert solve_formula(formula).is_unsat

    def test_validation(self):
        with pytest.raises(ValueError):
            parity_chain(1)
        with pytest.raises(ValueError):
            random_parity(2, 3, arity=1)


class TestColoring:
    def test_triangle_needs_three_colors(self):
        triangle = [(0, 1), (1, 2), (0, 2)]
        assert solve_formula(graph_coloring(3, triangle, 2)).is_unsat
        assert solve_formula(graph_coloring(3, triangle, 3)).is_sat

    def test_clique_coloring_threshold(self):
        assert solve_formula(clique_coloring(4, 3)).is_unsat
        assert solve_formula(clique_coloring(4, 4)).is_sat

    def test_pendants_do_not_change_satisfiability(self):
        assert solve_formula(clique_coloring(4, 3, pendant_vertices=8)).is_unsat
        assert solve_formula(clique_coloring(4, 4, pendant_vertices=8)).is_sat

    def test_validation(self):
        with pytest.raises(ValueError):
            graph_coloring(0, [], 2)
        with pytest.raises(ValueError):
            graph_coloring(2, [(0, 0)], 2)
        with pytest.raises(ValueError):
            graph_coloring(2, [(0, 5)], 2)


class TestRouting:
    def test_overlap_semantics(self):
        assert RoutingNet(0, 5).overlaps(RoutingNet(5, 8))
        assert not RoutingNet(0, 4).overlaps(RoutingNet(5, 8))

    def test_inverted_span_rejected(self):
        with pytest.raises(ValueError):
            RoutingNet(3, 1)

    def test_routable_channel(self):
        nets = [RoutingNet(0, 2), RoutingNet(1, 3), RoutingNet(4, 6)]
        assert solve_formula(channel_routing(nets, 2)).is_sat

    def test_congested_channel_unsat(self):
        nets = [RoutingNet(0, 3)] * 3
        assert solve_formula(channel_routing(nets, 2)).is_unsat

    def test_dense_instance_unsat_with_filler(self):
        formula, congested = dense_channel_instance(3, easy_nets=8, seed=1)
        assert congested == 4
        assert solve_formula(formula).is_unsat

    def test_dense_instance_validation(self):
        with pytest.raises(ValueError):
            dense_channel_instance(4, congested_nets=4)


class TestPlanning:
    def test_path_too_short_horizon(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        assert solve_formula(path_planning(4, edges, 0, 3, horizon=2)).is_unsat
        assert solve_formula(path_planning(4, edges, 0, 3, horizon=3)).is_sat

    def test_grid_default_horizon_is_unsat(self):
        assert solve_formula(grid_planning(3, 3)).is_unsat

    def test_grid_with_slack_is_sat(self):
        assert solve_formula(grid_planning(3, 3, horizon=4)).is_sat

    def test_swap_is_impossible_on_a_path(self):
        for horizon in (4, 9):
            assert solve_formula(swap_planning(4, horizon)).is_unsat

    def test_swap_requires_search(self):
        result = solve_formula(swap_planning(4, 8))
        assert result.stats.conflicts > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            path_planning(3, [(0, 1)], 0, 5, horizon=2)
        with pytest.raises(ValueError):
            path_planning(3, [(0, 3)], 0, 2, horizon=2)
        with pytest.raises(ValueError):
            swap_planning(1, 5)
