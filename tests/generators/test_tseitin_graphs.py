"""Tseitin graph formulas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import DepthFirstChecker
from repro.generators import (
    is_satisfiable_charge,
    tseitin_formula,
    tseitin_random_regular,
)
from repro.solver import SolverConfig, solve_formula
from repro.solver.reference import reference_is_satisfiable
from repro.trace import InMemoryTraceWriter


def test_triangle_even_charge_sat():
    edges = [(0, 1), (1, 2), (0, 2)]
    formula = tseitin_formula(3, edges, [False, False, False])
    assert solve_formula(formula).is_sat


def test_triangle_odd_charge_unsat():
    edges = [(0, 1), (1, 2), (0, 2)]
    formula = tseitin_formula(3, edges, [True, False, False])
    assert solve_formula(formula).is_unsat


def test_two_components_each_parity_matters():
    # Components {0,1} and {2,3}; odd charge isolated in one component.
    edges = [(0, 1), (2, 3)]
    formula = tseitin_formula(4, edges, [True, False, False, False])
    assert solve_formula(formula).is_unsat
    formula = tseitin_formula(4, edges, [True, True, False, False])
    assert solve_formula(formula).is_sat


def test_isolated_vertex_with_charge():
    formula = tseitin_formula(2, [(0, 1)], [False, False])
    assert solve_formula(formula).is_sat
    formula = tseitin_formula(3, [(0, 1)], [False, False, True])
    assert solve_formula(formula).is_unsat


def test_validation():
    with pytest.raises(ValueError):
        tseitin_formula(2, [(0, 1)], [True])
    with pytest.raises(ValueError):
        tseitin_formula(2, [(0, 0)], [True, False])
    with pytest.raises(ValueError):
        tseitin_random_regular(5, degree=3)


def test_random_regular_unsat_and_checkable():
    formula = tseitin_random_regular(10, degree=3, seed=4)
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, trace_writer=writer)
    assert result.is_unsat
    report = DepthFirstChecker(formula, writer.to_trace()).check()
    assert report.verified
    # The hard-for-resolution signature: a large fraction of learned
    # clauses participates in the proof.
    assert report.built_pct > 50.0


def test_random_regular_sat_variant():
    formula = tseitin_random_regular(10, degree=3, seed=4, satisfiable=True)
    assert solve_formula(formula).is_sat


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**4),
    num_vertices=st.integers(min_value=3, max_value=7),
)
def test_charge_criterion_matches_sat(seed, num_vertices):
    import random as random_module

    rng = random_module.Random(seed)
    edges = []
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < 0.5:
                edges.append((u, v))
    charges = [rng.random() < 0.5 for _ in range(num_vertices)]
    formula = tseitin_formula(num_vertices, edges, charges)
    expected = is_satisfiable_charge(num_vertices, edges, charges)
    assert reference_is_satisfiable(formula) == expected
    assert solve_formula(formula).is_sat == expected
