"""Suite-wide checker agreement: all strategies accept the same proofs and
their resource profiles respect the paper's ordering on every instance."""

import pytest

from repro.checker import BreadthFirstChecker, DepthFirstChecker, HybridChecker
from repro.experiments.suite import default_suite
from repro.solver import Solver, SolverConfig
from repro.trace import InMemoryTraceWriter


@pytest.fixture(scope="module")
def suite_proofs():
    proofs = []
    for instance in default_suite("small"):
        formula = instance.build()
        writer = InMemoryTraceWriter()
        result = Solver(formula, SolverConfig(), trace_writer=writer).solve()
        assert result.is_unsat
        proofs.append((instance.name, formula, writer.to_trace()))
    return proofs


def test_all_checkers_agree_on_the_whole_suite(suite_proofs):
    for name, formula, trace in suite_proofs:
        df = DepthFirstChecker(formula, trace).check()
        bf = BreadthFirstChecker(formula, trace).check()
        hy = HybridChecker(formula, trace).check()
        assert df.verified and bf.verified and hy.verified, name


def test_built_count_ordering(suite_proofs):
    """DF <= hybrid <= BF (= all) on every instance."""
    for name, formula, trace in suite_proofs:
        df = DepthFirstChecker(formula, trace).check()
        bf = BreadthFirstChecker(formula, trace).check()
        hy = HybridChecker(formula, trace).check()
        assert df.clauses_built <= hy.clauses_built <= bf.clauses_built, name
        assert bf.clauses_built == trace.num_learned, name


def test_memory_ordering(suite_proofs):
    """BF peak <= hybrid peak <= DF peak wherever traces are non-trivial."""
    for name, formula, trace in suite_proofs:
        if trace.num_learned < 30:
            continue
        df = DepthFirstChecker(formula, trace).check()
        bf = BreadthFirstChecker(formula, trace).check()
        hy = HybridChecker(formula, trace).check()
        assert bf.peak_memory_units <= df.peak_memory_units, name
        assert hy.peak_memory_units <= df.peak_memory_units, name


def test_resolution_counts_relate(suite_proofs):
    """BF replays every recorded resolution; DF a subset of it plus the
    final derivation (which both perform)."""
    for name, formula, trace in suite_proofs:
        df = DepthFirstChecker(formula, trace).check()
        bf = BreadthFirstChecker(formula, trace).check()
        assert df.resolutions <= bf.resolutions + len(trace.level_zero), name
