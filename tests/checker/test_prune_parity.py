"""Core-first pruning must never change a verdict.

The gate for the whole prune-plan feature: every checking strategy, run
pruned and unpruned over the same input, must return the same verdict —
on clean traces AND across the fault-injection matrix. The one principled
exception: a semantic fault inside a statically *dead* lemma. An unpruned
breadth-first replay builds dead clauses and trips over it; a pruned run
(like the depth-first checker, which never built dead clauses to begin
with) legitimately does not. A fault anywhere inside the cone must fail
identically in both runs — pruning may never mask it.
"""

import pytest

from repro.analysis import compute_prune_plan
from repro.checker import (
    BreadthFirstChecker,
    DepthFirstChecker,
    HybridChecker,
    ParallelWindowedChecker,
    RupChecker,
)
from repro.checker.rup import DrupWriter
from repro.solver import Solver, SolverConfig, solve_formula
from repro.solver.buggy import BugKind, make_buggy_solver
from repro.trace import InMemoryTraceWriter

from tests.conftest import pigeonhole, random_3sat

ALL_BUGS = sorted(BugKind, key=lambda b: b.value)


def solved_trace(formula, **kwargs):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(**kwargs), trace_writer=writer)
    assert result.is_unsat
    return writer.to_trace()


def run_all_strategies(formula, source, plan):
    """Reports from the four resolution strategies, pruned and unpruned.

    ``source`` is a Trace or a trace file path; the depth-first checker
    only participates for in-memory traces (it cannot load a stream the
    assembler rejects, and neither could any caller hand it one).
    """
    from repro.trace.records import Trace

    strategies = [
        ("bf", lambda p: BreadthFirstChecker(formula, source, prune_plan=p)),
        ("hybrid", lambda p: HybridChecker(formula, source, prune_plan=p)),
        (
            "parallel",
            lambda p: ParallelWindowedChecker(
                formula, source, num_workers=1, prune_plan=p
            ),
        ),
    ]
    if isinstance(source, Trace):
        strategies.insert(
            0, ("df", lambda p: DepthFirstChecker(formula, source, prune_plan=p))
        )
    return {name: (build(None).check(), build(plan).check())
            for name, build in strategies}


def verdict(report):
    if report.verified:
        return ("verified",)
    return (report.failure.kind.value, report.failure.message)


def assert_parity(unpruned, pruned, plan, label):
    """Same verdict, modulo the documented dead-lemma exception."""
    if verdict(unpruned) == verdict(pruned):
        return
    # The only tolerated divergence: the unpruned failure lives in a
    # statically dead lemma the pruned run never builds.
    assert not unpruned.verified and pruned.verified, (
        label, verdict(unpruned), verdict(pruned),
    )
    assert plan is not None, label
    cid = unpruned.failure.context.get("cid")
    assert cid is not None and cid in plan.skip, (
        label, verdict(unpruned), verdict(pruned), cid,
    )


@pytest.mark.parametrize(
    "make",
    [
        pytest.param(lambda: pigeonhole(6, 5), id="php65"),
        pytest.param(lambda: random_3sat(16, 80, seed=3), id="r3sat"),
    ],
)
def test_clean_traces_verify_identically_pruned_and_unpruned(make):
    formula = make()
    trace = solved_trace(formula)
    plan = compute_prune_plan(trace)
    assert plan is not None
    for name, (unpruned, pruned) in run_all_strategies(formula, trace, plan).items():
        assert unpruned.verified, (name, unpruned.failure)
        assert pruned.verified, (name, pruned.failure)
        assert pruned.prune is not None and unpruned.prune is None
        assert pruned.prune["skipped"] == len(plan.skip)
        # The pruned run builds exactly the cone (df builds it regardless).
        if name in ("bf", "parallel"):
            assert pruned.clauses_built == len(plan.keep)
            assert unpruned.clauses_built == plan.total_learned


def test_pruned_bf_builds_only_the_cone():
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    plan = compute_prune_plan(trace)
    report = BreadthFirstChecker(formula, trace, prune_plan=plan).check()
    assert report.verified
    assert report.clauses_built == len(plan.keep)
    assert report.total_learned == plan.total_learned


@pytest.mark.parametrize("bug", ALL_BUGS)
def test_fault_matrix_verdict_parity(bug, tmp_path):
    """Every injectable bug: pruning must not change any strategy's verdict
    (structurally corrupt traces produce no plan at all and run unpruned
    on both sides, which is parity by construction)."""
    checked = 0
    for seed in range(6):
        formula = pigeonhole(6, 5)
        if bug is BugKind.EMPTY_SOURCES:
            # The in-memory record type rejects zero-source clauses, so
            # this bug only exists through file-backed writers.
            from repro.trace import AsciiTraceWriter

            path = tmp_path / f"{bug.value}_{seed}.trace"
            inner = AsciiTraceWriter(path)
            solver, wrapper = make_buggy_solver(formula, bug, inner, seed=seed)
            result = solver.solve()
            inner.close()
            if not result.is_unsat or (wrapper is not None and not wrapper.corrupted):
                continue
            source = str(path)
            plan = compute_prune_plan(source)
            checked += 1
            for name, (unpruned, pruned) in run_all_strategies(
                formula, source, plan
            ).items():
                assert_parity(unpruned, pruned, plan, (bug, seed, name))
            continue
        inner = InMemoryTraceWriter()
        solver, wrapper = make_buggy_solver(formula, bug, inner, seed=seed)
        result = solver.solve()
        if not result.is_unsat:
            continue
        if wrapper is not None and not wrapper.corrupted:
            continue
        try:
            source = inner.to_trace()
        except Exception:
            # Assembly rejects the stream (e.g. duplicate IDs); the
            # streaming checkers still see it through a file.
            path = tmp_path / f"{bug.value}_{seed}.trace"
            _write_records_ascii(path, inner.records)
            source = str(path)
        plan = compute_prune_plan(source)
        checked += 1
        for name, (unpruned, pruned) in run_all_strategies(
            formula, source, plan
        ).items():
            assert_parity(unpruned, pruned, plan, (bug, seed, name))
    assert checked > 0, f"bug {bug} never produced a checkable trace"


def _write_records_ascii(path, records):
    from repro.trace import AsciiTraceWriter
    from repro.trace.records import (
        ClauseDeletion,
        FinalConflict,
        LearnedClause,
        LevelZeroAssignment,
        TraceHeader,
        TraceResult,
    )

    writer = AsciiTraceWriter(path)
    for record in records:
        if isinstance(record, TraceHeader):
            writer.header(record.num_vars, record.num_original_clauses)
        elif isinstance(record, LearnedClause):
            writer.learned_clause(record.cid, record.sources)
        elif isinstance(record, LevelZeroAssignment):
            writer.level_zero(record.var, record.value, record.antecedent)
        elif isinstance(record, FinalConflict):
            writer.final_conflict(record.cid)
        elif isinstance(record, TraceResult):
            writer.result(record.status)
        elif isinstance(record, ClauseDeletion):
            writer.clause_deletion(record.cid)
    writer.close()


def test_fault_inside_the_cone_still_fails_pruned():
    """Corrupt a kept clause's chain directly: the pruned run must fail with
    the same verdict as the unpruned one — pruning never masks a cone bug."""
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    plan = compute_prune_plan(trace)
    # Pick a kept learned clause with >2 sources and drop one mid-chain.
    victim = next(
        cid for cid in sorted(plan.keep)
        if len(trace.learned[cid].sources) > 2
    )
    from repro.trace.records import LearnedClause

    broken = trace.learned[victim]
    trace.learned[victim] = LearnedClause(
        victim, broken.sources[:1] + broken.sources[2:]
    )
    plan = compute_prune_plan(trace)  # re-plan: structure is still clean
    assert plan is not None and victim in plan.keep
    for name, (unpruned, pruned) in run_all_strategies(formula, trace, plan).items():
        assert not unpruned.verified, name
        assert not pruned.verified, name
        assert verdict(unpruned) == verdict(pruned), name


def test_checkpoint_fingerprints_separate_pruned_and_unpruned(tmp_path):
    """A BF checkpoint written pruned must not resume an unpruned run."""
    formula = pigeonhole(6, 5)
    writer = InMemoryTraceWriter()
    assert solve_formula(formula, trace_writer=writer).is_unsat
    trace = writer.to_trace()
    plan = compute_prune_plan(trace)
    assert plan is not None

    pruned = BreadthFirstChecker(formula, trace, prune_plan=plan)
    unpruned = BreadthFirstChecker(formula, trace)
    pruned.check()
    unpruned.check()
    assert pruned._trace_fingerprint() != unpruned._trace_fingerprint()


# -- RUP ---------------------------------------------------------------------


def _solve_with_drup(formula, tmp_path, seed=0, **config):
    trace_writer = InMemoryTraceWriter()
    drup_path = tmp_path / "proof.drup"
    solver = Solver(
        formula,
        config=SolverConfig(seed=seed, **config),
        trace_writer=trace_writer,
        drup_writer=DrupWriter(drup_path),  # the solver finishes and closes it
    )
    assert solver.solve().is_unsat
    return trace_writer.to_trace(), drup_path


def test_rup_pruned_skips_dead_steps_and_still_verifies(tmp_path):
    formula = pigeonhole(6, 5)
    trace, drup_path = _solve_with_drup(formula, tmp_path)
    plan = compute_prune_plan(trace)
    assert plan is not None

    unpruned = RupChecker(formula, drup_path).check()
    pruned = RupChecker(formula, drup_path, prune_plan=plan).check()
    assert unpruned.verified and pruned.verified
    assert pruned.prune["applied"] is True
    assert pruned.prune["steps_skipped"] == len(plan.skip_ordinals)
    assert pruned.total_learned == unpruned.total_learned


def test_rup_fault_in_cone_fails_pruned_and_unpruned(tmp_path):
    """Corrupt an add step that pruning keeps: both runs must refuse it."""
    formula = pigeonhole(6, 5)
    trace, drup_path = _solve_with_drup(formula, tmp_path)
    plan = compute_prune_plan(trace)
    ordered = list(trace.learned)
    keep_ordinals = [o for o in range(len(ordered)) if o not in plan.skip_ordinals]
    target = keep_ordinals[len(keep_ordinals) // 2]

    # Rewrite that add step into a clause that is not RUP: a fresh clause
    # over unconstrained polarity flips is not implied by unit propagation.
    lines = drup_path.read_text().splitlines()
    add_ordinal = -1
    for number, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith(("c", "d")) or stripped == "0":
            continue
        add_ordinal += 1
        if add_ordinal == target:
            literals = [int(tok) for tok in stripped.split()[:-1]]
            lines[number] = " ".join(str(-lit) for lit in literals) + " 0"
            break
    corrupt = tmp_path / "corrupt.drup"
    corrupt.write_text("\n".join(lines) + "\n")

    unpruned = RupChecker(formula, corrupt).check()
    pruned = RupChecker(formula, corrupt, prune_plan=plan).check()
    assert not unpruned.verified
    assert not pruned.verified
    assert unpruned.failure.kind == pruned.failure.kind


def test_rup_alignment_guard_disables_pruning_on_mismatch(tmp_path):
    """A plan whose learned count disagrees with the DRUP add count (e.g.
    preprocessing resolvents traced but not logged) must be ignored."""
    import dataclasses

    formula = pigeonhole(6, 5)
    trace, drup_path = _solve_with_drup(formula, tmp_path)
    plan = compute_prune_plan(trace)
    skewed = dataclasses.replace(plan, total_learned=plan.total_learned + 1)

    report = RupChecker(formula, drup_path, prune_plan=skewed).check()
    assert report.verified
    assert report.prune["applied"] is False
    assert report.prune["steps_skipped"] == 0


def test_rup_deletion_of_skipped_clause_consumes_skip_credit(tmp_path):
    """With clause deletion active, a `d` step for a skipped (never-added)
    clause must not remove an identical kept clause from the database."""
    formula = pigeonhole(7, 6)
    trace, drup_path = _solve_with_drup(
        formula, tmp_path, seed=1, max_learned_factor=0.05, min_learned_cap=20
    )
    assert trace.num_deletions > 0
    plan = compute_prune_plan(trace)
    assert plan is not None and plan.skip

    unpruned = RupChecker(formula, drup_path).check()
    pruned = RupChecker(formula, drup_path, prune_plan=plan).check()
    assert unpruned.verified
    assert pruned.verified
    assert pruned.prune["applied"] is True
    assert pruned.prune["steps_skipped"] == len(plan.skip_ordinals)
