"""Unit tests for the RUP machinery: propagation engine, DRUP parsing, checker."""

import pytest

from repro.cnf import CnfFormula
from repro.checker import DrupWriter, RupChecker
from repro.checker.errors import CheckFailure
from repro.checker.rup import iter_drup
from repro.checker.unitprop import UnitPropagator


class TestUnitPropagator:
    def test_direct_conflict_in_assumptions(self):
        engine = UnitPropagator(2)
        assert engine.propagate([1, -1])

    def test_chain_propagation_to_conflict(self):
        engine = UnitPropagator(3)
        engine.add_clause([-1, 2])
        engine.add_clause([-2, 3])
        engine.add_clause([-3])
        assert engine.propagate([1])

    def test_no_conflict(self):
        engine = UnitPropagator(3)
        engine.add_clause([-1, 2])
        assert not engine.propagate([1])

    def test_db_unit_clauses_fire(self):
        engine = UnitPropagator(2)
        engine.add_clause([1])
        engine.add_clause([-1, 2])
        engine.add_clause([-2])
        assert engine.propagate([])

    def test_empty_clause_is_immediate_conflict(self):
        engine = UnitPropagator(1)
        engine.add_clause([])
        assert engine.propagate([])

    def test_removed_clause_ignored(self):
        engine = UnitPropagator(2)
        index = engine.add_clause([-1])
        assert engine.propagate([1])
        engine.remove_clause(index)
        assert not engine.propagate([1])
        engine.remove_clause(index)  # double removal is a no-op

    def test_duplicate_literals_deduped(self):
        engine = UnitPropagator(2)
        index = engine.add_clause([1, 1, 2])
        assert engine.clauses[index] == [1, 2]

    def test_grow(self):
        engine = UnitPropagator(2)
        engine.add_clause([5])
        assert engine.num_vars == 5


class TestDrupFormat:
    def test_writer_reader_roundtrip(self, tmp_path):
        path = tmp_path / "p.drup"
        with DrupWriter(path) as writer:
            writer.add_clause([1, -2])
            writer.delete_clause([1, -2])
            writer.finish_unsat()
        steps = list(iter_drup(path))
        assert steps == [("add", [1, -2]), ("delete", [1, -2]), ("add", [])]

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "p.drup"
        path.write_text("c comment\n1 2 0\n")
        assert list(iter_drup(path)) == [("add", [1, 2])]

    def test_missing_terminator_rejected(self, tmp_path):
        path = tmp_path / "p.drup"
        path.write_text("1 2\n")
        with pytest.raises(CheckFailure):
            list(iter_drup(path))

    def test_bad_token_rejected(self, tmp_path):
        path = tmp_path / "p.drup"
        path.write_text("1 x 0\n")
        with pytest.raises(CheckFailure):
            list(iter_drup(path))


class TestRupChecker:
    def test_handwritten_valid_proof(self, tmp_path):
        # PHP(2,1): (x1)(x2)(-x1 -x2). Proof: the empty clause is RUP.
        formula = CnfFormula(2, [[1], [2], [-1, -2]])
        proof = tmp_path / "p.drup"
        proof.write_text("0\n")
        assert RupChecker(formula, proof).check().verified

    def test_non_rup_clause_rejected(self, tmp_path):
        formula = CnfFormula(2, [[1, 2]])
        proof = tmp_path / "p.drup"
        proof.write_text("1 0\n0\n")  # (x1) is not implied by (x1|x2)
        report = RupChecker(formula, proof).check()
        assert not report.verified
        assert "not RUP" in str(report.failure)

    def test_proof_without_empty_clause_rejected(self, tmp_path):
        formula = CnfFormula(2, [[1], [-1, 2]])
        proof = tmp_path / "p.drup"
        proof.write_text("2 0\n")
        report = RupChecker(formula, proof).check()
        assert not report.verified
        assert report.failure.kind.value == "not-empty"

    def test_deletions_respected(self, tmp_path):
        # Deleting the clause that made step 2 RUP must break the proof.
        formula = CnfFormula(2, [[1], [-1, 2], [-2]])
        proof = tmp_path / "p.drup"
        proof.write_text("d 1 0\nd -1 2 0\nd -2 0\n0\n")
        report = RupChecker(formula, proof).check()
        assert not report.verified

    def test_deleting_unknown_clause_tolerated(self, tmp_path):
        formula = CnfFormula(2, [[1], [-1]])
        proof = tmp_path / "p.drup"
        proof.write_text("d 5 6 0\n0\n")
        assert RupChecker(formula, proof).check().verified
