"""CheckReport and CheckFailure plumbing."""

import pickle

import pytest

from repro.checker import CheckFailure, CheckReport, FailureKind, MemoryLimitExceeded


class TestCheckFailure:
    def test_message_carries_kind_and_context(self):
        failure = CheckFailure(FailureKind.BAD_RESOLUTION, "boom", cid=7, literal=-3)
        text = str(failure)
        assert "[bad-resolution]" in text
        assert "cid=7" in text
        assert failure.context == {"cid": 7, "literal": -3}

    def test_message_without_context(self):
        failure = CheckFailure(FailureKind.BAD_STATUS, "nothing to check")
        assert str(failure) == "[bad-status] nothing to check"

    def test_every_kind_has_a_distinct_slug(self):
        slugs = [kind.value for kind in FailureKind]
        assert len(set(slugs)) == len(slugs)
        assert "memory-out" in slugs
        assert "timeout" in slugs
        assert "worker-crash" in slugs

    def test_subclass_survives_pickling(self):
        """Regression: subclasses with non-standard __init__ signatures
        (e.g. ``MemoryLimitExceeded(used, limit)``) used to blow up on
        unpickle when crossing the worker-process boundary."""
        failure = MemoryLimitExceeded(100, 64)
        clone = pickle.loads(pickle.dumps(failure))
        assert type(clone) is MemoryLimitExceeded
        assert clone.kind is FailureKind.MEMORY_OUT
        assert clone.context == failure.context


class TestCheckReport:
    def _verified(self):
        return CheckReport(
            method="depth-first",
            verified=True,
            clauses_built=10,
            total_learned=40,
            peak_memory_units=123,
            check_time=0.5,
        )

    def test_built_pct(self):
        assert self._verified().built_pct == 25.0
        empty = CheckReport(method="x", verified=True, total_learned=0)
        assert empty.built_pct == 0.0

    def test_summary_succeeded(self):
        text = self._verified().summary()
        assert "Check Succeeded" in text
        assert "10/40" in text
        assert "25.0%" in text

    def test_summary_failed(self):
        failure = CheckFailure(FailureKind.UNKNOWN_CLAUSE, "missing", cid=5)
        report = CheckReport(method="bf", verified=False, failure=failure)
        assert "Check Failed" in report.summary()
        assert "missing" in report.summary()

    def test_raise_if_failed(self):
        self._verified().raise_if_failed()  # no-op
        failure = CheckFailure(FailureKind.CYCLIC_TRACE, "loop", cid=9)
        report = CheckReport(method="bf", verified=False, failure=failure)
        with pytest.raises(CheckFailure) as excinfo:
            report.raise_if_failed()
        assert excinfo.value.kind == FailureKind.CYCLIC_TRACE

    def test_unverified_without_failure_is_a_bug(self):
        report = CheckReport(method="bf", verified=False)
        with pytest.raises(AssertionError):
            report.raise_if_failed()
