"""CheckReport and CheckFailure plumbing."""

import pickle

import pytest

from repro.checker import CheckFailure, CheckReport, FailureKind, MemoryLimitExceeded


class TestCheckFailure:
    def test_message_carries_kind_and_context(self):
        failure = CheckFailure(FailureKind.BAD_RESOLUTION, "boom", cid=7, literal=-3)
        text = str(failure)
        assert "[bad-resolution]" in text
        assert "cid=7" in text
        assert failure.context == {"cid": 7, "literal": -3}

    def test_message_without_context(self):
        failure = CheckFailure(FailureKind.BAD_STATUS, "nothing to check")
        assert str(failure) == "[bad-status] nothing to check"

    def test_every_kind_has_a_distinct_slug(self):
        slugs = [kind.value for kind in FailureKind]
        assert len(set(slugs)) == len(slugs)
        assert "memory-out" in slugs
        assert "timeout" in slugs
        assert "worker-crash" in slugs

    def test_subclass_survives_pickling(self):
        """Regression: subclasses with non-standard __init__ signatures
        (e.g. ``MemoryLimitExceeded(used, limit)``) used to blow up on
        unpickle when crossing the worker-process boundary."""
        failure = MemoryLimitExceeded(100, 64)
        clone = pickle.loads(pickle.dumps(failure))
        assert type(clone) is MemoryLimitExceeded
        assert clone.kind is FailureKind.MEMORY_OUT
        assert clone.context == failure.context


class TestCheckReport:
    def _verified(self):
        return CheckReport(
            method="depth-first",
            verified=True,
            clauses_built=10,
            total_learned=40,
            peak_memory_units=123,
            check_time=0.5,
        )

    def test_built_pct(self):
        assert self._verified().built_pct == 25.0
        empty = CheckReport(method="x", verified=True, total_learned=0)
        assert empty.built_pct == 0.0

    def test_summary_succeeded(self):
        text = self._verified().summary()
        assert "Check Succeeded" in text
        assert "10/40" in text
        assert "25.0%" in text

    def test_summary_failed(self):
        failure = CheckFailure(FailureKind.UNKNOWN_CLAUSE, "missing", cid=5)
        report = CheckReport(method="bf", verified=False, failure=failure)
        assert "Check Failed" in report.summary()
        assert "missing" in report.summary()

    def test_raise_if_failed(self):
        self._verified().raise_if_failed()  # no-op
        failure = CheckFailure(FailureKind.CYCLIC_TRACE, "loop", cid=9)
        report = CheckReport(method="bf", verified=False, failure=failure)
        with pytest.raises(CheckFailure) as excinfo:
            report.raise_if_failed()
        assert excinfo.value.kind == FailureKind.CYCLIC_TRACE

    def test_unverified_without_failure_is_a_bug(self):
        report = CheckReport(method="bf", verified=False)
        with pytest.raises(AssertionError):
            report.raise_if_failed()


class TestReportJson:
    """The stable JSON schema behind the verdict cache and --format json."""

    def _full(self):
        return CheckReport(
            method="depth-first",
            verified=False,
            failure=CheckFailure(FailureKind.BAD_RESOLUTION, "no pivot", cid=9),
            clauses_built=3,
            total_learned=12,
            peak_memory_units=77,
            check_time=0.123456789,
            resolutions=42,
            original_core={5, 1, 3},
            learned_used={20, 15},
            degradation=[{"method": "df", "outcome": "memory-out", "elapsed_s": 0.1}],
            fingerprint={"formula_sha256": "f", "trace_sha256": "t",
                         "options_sha256": "o", "key": "k"},
        )

    def test_round_trip_preserves_everything(self):
        from repro.checker.report import REPORT_SCHEMA_VERSION

        payload = self._full().to_json()
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        clone = CheckReport.from_json(payload)
        assert clone.method == "depth-first" and clone.verified is False
        assert clone.failure.kind is FailureKind.BAD_RESOLUTION
        assert clone.failure.context == {"cid": 9}
        assert clone.original_core == {1, 3, 5}
        assert clone.learned_used == {15, 20}
        assert clone.check_time == 0.123457  # rounded at serialization
        assert clone.degradation[0]["outcome"] == "memory-out"
        assert clone.fingerprint["key"] == "k"
        assert clone.from_cache is False

    def test_sets_serialize_sorted_and_deterministic(self):
        import json

        first = json.dumps(self._full().to_json(), sort_keys=True)
        second = json.dumps(self._full().to_json(), sort_keys=True)
        assert first == second
        assert json.loads(first)["original_core"] == [1, 3, 5]

    def test_optional_fields_absent_when_unset(self):
        payload = CheckReport(method="breadth-first", verified=True).to_json()
        for absent in ("failure", "original_core", "learned_used",
                       "window_stats", "degradation", "recovery", "fingerprint"):
            assert absent not in payload
        assert "from_cache" not in payload  # runtime-only flag

    def test_from_json_rejects_other_schema_versions(self):
        from repro.checker.report import REPORT_SCHEMA_VERSION

        payload = self._full().to_json()
        payload["schema_version"] = REPORT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            CheckReport.from_json(payload)
        del payload["schema_version"]
        with pytest.raises(ValueError, match="schema version"):
            CheckReport.from_json(payload)

    def test_exotic_failure_context_degrades_to_repr(self):
        from repro.checker.report import failure_to_json

        failure = CheckFailure(
            FailureKind.MALFORMED_TRACE, "weird", literals=(1, -2), vars={3, 1}, blob=object()
        )
        context = failure_to_json(failure)["context"]
        assert context["literals"] == [1, -2]
        assert context["vars"] == [1, 3]
        assert context["blob"].startswith("<object object")
