"""The resolution kernel against the frozenset oracle, plus the clause store.

The kernel (:mod:`repro.checker.kernel`) must be *observationally identical*
to the paper's frozenset fold: same resolvents, same ``BAD_RESOLUTION``
failures, same error context — on valid chains, zero-clash and multi-clash
failures, duplicate literals and tautological inputs alike. Hypothesis
drives the equivalence over random chains; deterministic cases pin the
interesting corners.
"""

import pickle
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker.kernel import (
    KernelEngine,
    ReferenceEngine,
    ResolutionKernel,
    SignedCounters,
    make_engine,
)
from repro.checker.resolution import ResolutionError, resolve, resolve_chain
from repro.checker.store import ClauseStore, InternedClause
from repro.cnf import CnfFormula

literals = st.integers(min_value=-6, max_value=6).filter(lambda lit: lit != 0)
clauses = st.lists(literals, min_size=1, max_size=6)
chains = st.lists(clauses, min_size=1, max_size=6)


def _oracle_outcome(chain, learned_cid=99):
    pairs = [(cid, frozenset(lits)) for cid, lits in enumerate(chain, start=1)]
    try:
        return ("ok", resolve_chain(pairs, learned_cid=learned_cid))
    except ResolutionError as exc:
        return ("err", exc.context)


def _kernel_outcome(chain, learned_cid=99, raw_sources=False):
    kernel = ResolutionKernel(num_vars=8)
    if raw_sources:
        table = {cid: list(lits) for cid, lits in enumerate(chain, start=1)}
    else:
        table = {cid: kernel.intern(lits) for cid, lits in enumerate(chain, start=1)}
    sources = tuple(range(1, len(chain) + 1))
    try:
        result = kernel.resolve_chain(learned_cid, sources, table.__getitem__)
        return ("ok", result)
    except ResolutionError as exc:
        return ("err", exc.context)


def _assert_equivalent(chain, raw_sources=False):
    oracle_kind, oracle_value = _oracle_outcome(chain)
    kernel_kind, kernel_value = _kernel_outcome(chain, raw_sources=raw_sources)
    assert kernel_kind == oracle_kind, (chain, oracle_value, kernel_value)
    if oracle_kind == "ok":
        assert frozenset(kernel_value) == oracle_value
        out = list(kernel_value)
        assert out == sorted(out) and len(out) == len(set(out))
    else:
        for key in ("learned_cid", "chain_position", "cid_b"):
            assert kernel_value.get(key) == oracle_value.get(key), (chain, key)
        assert kernel_value.get("clashing_vars") == oracle_value.get("clashing_vars")


@given(chains)
@settings(max_examples=300)
def test_chain_equivalence_on_random_chains(chain):
    _assert_equivalent(chain)


@given(chains)
@settings(max_examples=150)
def test_chain_equivalence_with_uninterned_sources(chain):
    # get_clause may hand the kernel plain lists (no cached mark sets);
    # the fallback path must keep the exact oracle semantics.
    _assert_equivalent(chain, raw_sources=True)


def test_valid_chain_matches_oracle():
    chain = [[1, 2], [-1, 3], [-2, 4]]
    kind, value = _kernel_outcome(chain)
    assert kind == "ok"
    assert list(value) == [3, 4]


def test_zero_clash_chain_reports_position_and_source():
    kind, context = _kernel_outcome([[1, 2], [1, 3]])
    assert kind == "err"
    assert context["learned_cid"] == 99
    assert context["chain_position"] == 1
    assert context["cid_b"] == 2
    assert context["clashing_vars"] == []


def test_multi_clash_chain_matches_oracle():
    _assert_equivalent([[1, 2], [-1, -2]])


def test_failure_mid_chain_carries_the_right_position():
    kind, context = _kernel_outcome([[1, 2], [-1, 3], [5, 6]])
    assert kind == "err"
    assert context["chain_position"] == 2
    assert context["cid_b"] == 3


def test_tautological_source_resolves_like_the_oracle():
    # B contains both phases of the pivot variable; only the literal whose
    # negation is in the accumulator clashes.
    _assert_equivalent([[1, 2], [-1, 1, 3]])
    _assert_equivalent([[-1, 2], [-1, 1, 3]])


def test_tautological_accumulator_double_clash():
    # The accumulator carries both phases of var 1 into a clause holding
    # both phases too: two clashes, exactly as the oracle counts them.
    _assert_equivalent([[1, -1, 2], [1, -1]])


def test_duplicate_literals_do_not_double_count_clashes():
    _assert_equivalent([[1, 2], [-1, -1, 3]])


def test_empty_chain_raises():
    kernel = ResolutionKernel(num_vars=4)
    with pytest.raises(ResolutionError):
        kernel.resolve_chain(7, (), lambda cid: [1])


def test_kernel_grows_past_initial_capacity():
    kernel = ResolutionKernel(num_vars=1)
    table = {1: kernel.intern([100, 2]), 2: kernel.intern([-100, 3])}
    result = kernel.resolve_chain(9, (1, 2), table.__getitem__)
    assert list(result) == [2, 3]


pairs = st.tuples(clauses, clauses)


@given(pairs)
@settings(max_examples=200)
def test_single_step_resolve_matches_oracle(pair):
    clause_a, clause_b = pair
    kernel = ResolutionKernel(num_vars=8)
    try:
        expected = ("ok", resolve(frozenset(clause_a), frozenset(clause_b)))
    except ResolutionError as exc:
        expected = ("err", exc.context.get("clashing_vars"))
    try:
        got = kernel.resolve(clause_a, clause_b, cid_a=1, cid_b=2)
        assert expected[0] == "ok"
        assert frozenset(got) == expected[1]
        assert list(got) == sorted(got)
    except ResolutionError as exc:
        assert expected[0] == "err"
        assert exc.context.get("clashing_vars") == expected[1]
        assert exc.context.get("cid_a") == 1 and exc.context.get("cid_b") == 2


# -- the interning store -----------------------------------------------------


def test_store_interns_duplicates_to_one_buffer():
    store = ClauseStore()
    a = store.intern([3, 1, -2])
    b = store.intern([-2, 1, 3, 1])
    assert a is b
    assert list(a) == [-2, 1, 3]
    assert store.hits == 1 and store.misses == 1
    assert len(store) == 1
    assert store.resident_references == 2


def test_store_release_evicts_at_zero_references():
    store = ClauseStore()
    clause = store.intern([1, 2])
    store.intern([1, 2])
    store.release(clause)
    assert len(store) == 1  # one reference still held
    store.release(clause)
    assert len(store) == 0
    assert clause not in store


def test_store_release_is_noop_for_foreign_clauses():
    store = ClauseStore()
    store.release(frozenset({1, 2}))  # reference-engine clause: ignored
    store.release(array("i", [1, 2]))  # never interned: ignored
    assert len(store) == 0


def test_store_reports_real_memory_and_stats():
    store = ClauseStore()
    store.intern([1, 2, 3])
    stats = store.stats()
    assert stats["unique_clauses"] == 1
    assert stats["resident_references"] == 1
    assert stats["misses"] == 1
    assert stats["memory_bytes"] > 0
    store.intern([4])
    assert store.memory_bytes() > stats["memory_bytes"]


def test_interned_clause_carries_cached_mark_sets():
    store = ClauseStore()
    clause = store.intern([2, -5, 7])
    assert isinstance(clause, InternedClause)
    assert clause.litset == frozenset({2, -5, 7})
    assert clause.negset == frozenset({-2, 5, -7})


def test_interned_clause_survives_pickling_without_mark_sets():
    # array subclasses pickle their buffer but drop slot attributes; the
    # kernel must still resolve with such a clause via the fallback path.
    store = ClauseStore()
    clause = pickle.loads(pickle.dumps(store.intern([1, 2])))
    assert isinstance(clause, InternedClause)
    assert list(clause) == [1, 2]
    kernel = ResolutionKernel(num_vars=4)
    table = {1: clause, 2: kernel.intern([-1, 3])}
    assert list(kernel.resolve_chain(5, (1, 2), table.__getitem__)) == [2, 3]


# -- engines -----------------------------------------------------------------


def _tiny_formula():
    return CnfFormula(3, [[1, 2], [-1, 3]])


def test_make_engine_selects_kernel_or_reference():
    assert isinstance(make_engine(True, _tiny_formula()), KernelEngine)
    assert isinstance(make_engine(False, _tiny_formula()), ReferenceEngine)


def test_engines_agree_on_chain_and_materialization():
    formula = _tiny_formula()
    kernel, reference = KernelEngine(formula), ReferenceEngine(formula)
    for engine in (kernel, reference):
        assert frozenset(engine.original(1)) == frozenset({1, 2})
    chain_k = kernel.chain(9, (1, 2), kernel.original)
    chain_r = reference.chain(9, (1, 2), reference.original)
    assert frozenset(chain_k) == chain_r == frozenset({2, 3})


def test_engine_original_rejects_unknown_cid():
    from repro.checker.errors import CheckFailure

    engine = KernelEngine(_tiny_formula())
    with pytest.raises(CheckFailure):
        engine.original(17)


# -- the signed-counter buffer ----------------------------------------------


def test_signed_counters_reset_by_generation():
    counters = SignedCounters(num_vars=3)
    gen = counters.new_generation()
    counters.marks[2] = gen
    assert counters.marks[2] == gen
    assert counters.new_generation() == gen + 1  # old stamps now stale
    counters.ensure(10)
    assert len(counters.marks) >= 11
