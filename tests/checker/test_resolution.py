"""Unit tests for the resolution primitive."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.checker import ResolutionError, resolve
from repro.checker.resolution import resolve_chain


def test_basic_resolution():
    # (x + y)(y' + z) resolves to (x + z) on y.
    assert resolve(frozenset({1, 2}), frozenset({-2, 3})) == frozenset({1, 3})


def test_resolution_to_empty_clause():
    assert resolve(frozenset({1}), frozenset({-1})) == frozenset()


def test_shared_literals_merge():
    assert resolve(frozenset({1, 2, 3}), frozenset({-1, 2, 3})) == frozenset({2, 3})


def test_no_clash_rejected():
    with pytest.raises(ResolutionError):
        resolve(frozenset({1, 2}), frozenset({2, 3}))


def test_double_clash_rejected():
    with pytest.raises(ResolutionError) as excinfo:
        resolve(frozenset({1, 2}), frozenset({-1, -2}), cid_a=10, cid_b=20)
    assert excinfo.value.context["cid_a"] == 10
    assert excinfo.value.context["clashing_vars"] == [1, 2]


def test_resolve_chain_folds_left():
    chain = [
        (1, frozenset({1, 2})),
        (2, frozenset({-2, 3})),
        (3, frozenset({-3, 4})),
    ]
    assert resolve_chain(chain) == frozenset({1, 4})


def test_resolve_chain_empty_rejected():
    with pytest.raises(ResolutionError):
        resolve_chain([])


def test_resolve_chain_single_is_identity():
    assert resolve_chain([(5, frozenset({1, -2}))]) == frozenset({1, -2})


vars_st = st.integers(min_value=1, max_value=20)


@given(
    pivot=vars_st,
    left=st.sets(st.integers(min_value=-20, max_value=20).filter(lambda x: x != 0), max_size=8),
    right=st.sets(st.integers(min_value=-20, max_value=20).filter(lambda x: x != 0), max_size=8),
)
def test_resolution_property(pivot, left, right):
    # Construct tautology-free clauses guaranteed to clash exactly on `pivot`.
    left = {lit for lit in left if lit > 0} | {pivot}
    right = {lit for lit in right if lit < 0 and -lit not in left} | {-pivot}
    right.discard(pivot)
    resolvent = resolve(frozenset(left), frozenset(right))
    assert pivot not in resolvent and -pivot not in resolvent
    assert resolvent == (left | right) - {pivot, -pivot}
    # Resolvents of clash-free inputs are never tautological.
    assert not any(-lit in resolvent for lit in resolvent)
