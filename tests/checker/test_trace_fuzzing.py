"""Adversarial trace fuzzing.

Two properties that make a checker trustworthy:

* **Robustness** — arbitrary mutations of a trace never crash a checker:
  every outcome is either `verified` or a structured CheckFailure.
* **Soundness** — if any checker verifies a (possibly mutated) trace for
  a formula, that formula really is unsatisfiable. Mutations may
  accidentally produce a different-but-valid proof; they must never
  produce an accepted proof of a satisfiable formula.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import BreadthFirstChecker, DepthFirstChecker, HybridChecker
from repro.cnf import CnfFormula
from repro.solver import SolverConfig, solve_formula
from repro.solver.reference import reference_is_satisfiable
from repro.trace import InMemoryTraceWriter, TraceError
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
    assemble_trace,
)

from tests.conftest import pigeonhole, random_3sat


def _records_for(formula, seed=0):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(seed=seed), trace_writer=writer)
    assert result.is_unsat
    return list(writer.records)


def _mutate(records, rng):
    """Apply one random structural mutation; returns a new record list."""
    records = list(records)
    choice = rng.randrange(8)
    index = rng.randrange(len(records))
    record = records[index]
    if choice == 0 and len(records) > 1:
        del records[index]
    elif choice == 1:
        records.insert(index, records[rng.randrange(len(records))])
    elif choice == 2 and isinstance(record, LearnedClause):
        sources = list(record.sources)
        if sources:
            sources[rng.randrange(len(sources))] = rng.randrange(1, 500)
            try:
                records[index] = LearnedClause(record.cid, tuple(sources))
            except TraceError:
                pass
    elif choice == 3 and isinstance(record, LearnedClause):
        sources = list(record.sources)
        rng.shuffle(sources)
        records[index] = LearnedClause(record.cid, tuple(sources))
    elif choice == 4 and isinstance(record, LevelZeroAssignment):
        records[index] = LevelZeroAssignment(
            record.var, not record.value, record.antecedent
        )
    elif choice == 5 and isinstance(record, LevelZeroAssignment):
        records[index] = LevelZeroAssignment(
            record.var, record.value, rng.randrange(1, 500)
        )
    elif choice == 6 and isinstance(record, FinalConflict):
        records[index] = FinalConflict(rng.randrange(1, 500))
    elif choice == 7:
        two = rng.randrange(len(records))
        records[index], records[two] = records[two], records[index]
    return records


def _check_all(formula, records):
    """Run every checker; returns the list of reports (never raises)."""
    try:
        trace = assemble_trace(iter(records))
    except TraceError:
        return []  # structurally invalid: rejected at parse time, fine
    reports = []
    for checker in (
        DepthFirstChecker(formula, trace),
        BreadthFirstChecker(formula, trace),
        HybridChecker(formula, trace),
    ):
        report = checker.check()
        if not report.verified:
            assert report.failure is not None, f"{checker.method}: silent failure"
        reports.append(report)
    return reports


@pytest.mark.parametrize("seed", range(20))
def test_mutated_unsat_traces_never_crash(seed):
    formula = pigeonhole(4, 3)
    base = _records_for(formula)
    rng = random.Random(seed)
    records = base
    for _ in range(rng.randrange(1, 4)):
        records = _mutate(records, rng)
    _check_all(formula, records)  # asserts structured failure internally


@pytest.mark.parametrize("seed", range(30))
def test_no_accepted_proof_for_sat_formula(seed):
    """The soundness crown jewel: graft an UNSAT formula's trace onto a
    SATISFIABLE formula of the same shape and mutate it; no checker may
    ever verify."""
    rng = random.Random(seed)
    sat_formula = None
    while sat_formula is None:
        candidate = random_3sat(12, 40, seed=rng.randrange(10**6))
        if reference_is_satisfiable(candidate):
            sat_formula = candidate
    donor = None
    while donor is None:
        candidate = random_3sat(12, 52, seed=rng.randrange(10**6))
        if not reference_is_satisfiable(candidate):
            donor = candidate
    records = _records_for(donor)
    # Retarget the header at the SAT formula's clause count.
    records[0] = TraceHeader(sat_formula.num_vars, sat_formula.num_clauses)
    for _ in range(rng.randrange(0, 3)):
        records = _mutate(records, rng)
    for report in _check_all(sat_formula, records):
        assert not report.verified, (
            f"{report.method} accepted a proof for a SATISFIABLE formula"
        )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6), mutations=st.integers(1, 5))
def test_fuzz_property(seed, mutations):
    formula = pigeonhole(4, 3)
    rng = random.Random(seed)
    records = _records_for(formula)
    for _ in range(mutations):
        records = _mutate(records, rng)
    reports = _check_all(formula, records)
    # If any checker verified, the claim must be true — PHP(4,3) is UNSAT,
    # so verification is acceptable; agreement is not required (a mutation
    # can break one strategy's stream while leaving another's path valid).
    for report in reports:
        if not report.verified:
            assert report.failure is not None
