"""Unit tests for the level-0 state and empty-clause derivation."""

import pytest

from repro.checker.errors import CheckFailure, FailureKind
from repro.checker.level_zero import LevelZeroState, derive_empty_clause
from repro.trace.records import LevelZeroAssignment as V


def _state(*entries):
    return LevelZeroState([V(*entry) for entry in entries])


class TestLevelZeroState:
    def test_duplicate_variable_rejected(self):
        with pytest.raises(CheckFailure) as excinfo:
            _state((1, True, 5), (1, False, 6))
        assert excinfo.value.kind == FailureKind.BAD_LEVEL_ZERO

    def test_nonpositive_antecedent_rejected(self):
        with pytest.raises(CheckFailure):
            _state((1, True, 0))

    def test_is_false(self):
        state = _state((1, True, 5), (2, False, 6))
        assert state.is_false(-1)
        assert not state.is_false(1)
        assert state.is_false(2)
        assert not state.is_false(-2)
        assert not state.is_false(3)  # unassigned is not false

    def test_info_missing_var(self):
        state = _state((1, True, 5))
        with pytest.raises(CheckFailure) as excinfo:
            state.info(9)
        assert excinfo.value.kind == FailureKind.BAD_LEVEL_ZERO

    def test_check_all_false(self):
        state = _state((1, True, 5), (2, False, 6))
        state.check_all_false(7, frozenset({-1, 2}))
        with pytest.raises(CheckFailure) as excinfo:
            state.check_all_false(7, frozenset({1, 2}))
        assert excinfo.value.kind == FailureKind.BAD_FINAL_CONFLICT


class TestAntecedentValidation:
    def test_valid_antecedent(self):
        # x1 assigned first (true), then x2 implied by (-1, 2).
        state = _state((1, True, 5), (2, True, 6))
        state.check_antecedent(6, frozenset({-1, 2}), var=2)

    def test_missing_implied_literal(self):
        state = _state((1, True, 5), (2, True, 6))
        with pytest.raises(CheckFailure) as excinfo:
            state.check_antecedent(6, frozenset({-1, -2}), var=2)
        assert excinfo.value.kind == FailureKind.BAD_ANTECEDENT

    def test_other_literal_not_false(self):
        state = _state((1, True, 5), (2, True, 6))
        with pytest.raises(CheckFailure):
            state.check_antecedent(6, frozenset({1, 2}), var=2)  # x1 is true

    def test_other_literal_assigned_later(self):
        # x2's "antecedent" references x3, assigned after x2: not unit then.
        state = _state((1, True, 5), (2, True, 6), (3, False, 7))
        with pytest.raises(CheckFailure) as excinfo:
            state.check_antecedent(6, frozenset({3, 2}), var=2)
        assert "later" in str(excinfo.value)

    def test_unassigned_other_literal(self):
        state = _state((2, True, 6))
        with pytest.raises(CheckFailure):
            state.check_antecedent(6, frozenset({-9, 2}), var=2)


class TestDeriveEmptyClause:
    def test_simple_two_step(self):
        # Clause 1 = (x1), clause 2 = (-x1): assign x1 via 1, conflict on 2.
        clauses = {1: frozenset({1}), 2: frozenset({-1})}
        state = _state((1, True, 1))
        used = []
        steps = derive_empty_clause(2, clauses[2], state, clauses.__getitem__, used.append)
        assert steps == 1
        assert used == [2, 1]

    def test_chain(self):
        # c1=(1), c2=(-1,2), c3=(-2): x1 then x2 assigned; c3 conflicts.
        clauses = {1: frozenset({1}), 2: frozenset({-1, 2}), 3: frozenset({-2})}
        state = _state((1, True, 1), (2, True, 2))
        steps = derive_empty_clause(3, clauses[3], state, clauses.__getitem__)
        assert steps == 2

    def test_start_clause_not_falsified(self):
        clauses = {1: frozenset({1})}
        state = _state((1, True, 1))
        with pytest.raises(CheckFailure) as excinfo:
            derive_empty_clause(1, clauses[1], state, clauses.__getitem__)
        assert excinfo.value.kind == FailureKind.BAD_FINAL_CONFLICT

    def test_empty_start_is_zero_steps(self):
        state = _state()
        assert derive_empty_clause(9, frozenset(), state, lambda cid: frozenset()) == 0

    def test_bad_antecedent_detected_mid_derivation(self):
        # x1's recorded antecedent does not contain x1 at all.
        clauses = {1: frozenset({2}), 2: frozenset({-1})}
        state = _state((1, True, 1))
        with pytest.raises(CheckFailure) as excinfo:
            derive_empty_clause(2, clauses[2], state, clauses.__getitem__)
        assert excinfo.value.kind == FailureKind.BAD_ANTECEDENT
