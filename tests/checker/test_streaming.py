"""The constant-memory streaming checker: parity, budgets, the ladder.

The streaming tier's contract has two halves, each pinned here:

* **Verdict parity** — on any trace (clean or corrupted, pruned or not,
  in-memory or mmap'd binary) the streaming checker must agree with
  breadth-first byte for byte: same verdict, same failure kind, same
  build/resolution counts on the clean path.
* **Bounded residency** — ``memory_budget`` caps the resident clause set;
  overflow spills instead of failing, so it is the one checker that can
  never memory-out (which is why the fallback ladder swaps it in for BF
  on big traces).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from tools.gen_trace import generate

from repro.checker import (
    BreadthFirstChecker,
    CheckReport,
    StreamingWindowChecker,
)
from repro.checker.supervisor import CheckSupervisor, SupervisorConfig
from repro.cnf import parse_dimacs_file
from repro.solver.buggy import BugKind, make_buggy_solver
from repro.trace import InMemoryTraceWriter
from repro.trace.binary_format import (
    BinaryTraceWriter,
    MappedBinaryTrace,
    decode_mapped_batch,
    iter_binary_records,
    read_binary_trace,
    scan_mapped_learned,
)
from repro.trace.records import (
    ClauseDeletion,
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceError,
    TraceResult,
)

from tests.conftest import pigeonhole

TRACE_BUGS = [
    BugKind.DROP_SOURCE,
    BugKind.SWAP_SOURCES,
    BugKind.WRONG_ANTECEDENT,
    BugKind.OMIT_LEVEL_ZERO,
    BugKind.WRONG_FINAL_CONFLICT,
]


def solved_trace(formula):
    writer = InMemoryTraceWriter()
    from repro.solver import Solver

    result = Solver(formula, trace_writer=writer).solve()
    assert result.is_unsat
    return writer.to_trace()


def corrupted_trace(formula, bug, seed=0):
    """Solve with an injected trace bug; returns the trace iff the bug fired."""
    inner = InMemoryTraceWriter()
    solver, wrapper = make_buggy_solver(formula, bug, inner, seed=seed)
    result = solver.solve()
    assert result.is_unsat
    if wrapper is not None and not wrapper.corrupted:
        return None
    return inner.to_trace()


def dump_binary(trace, path):
    """Replay an in-memory trace into the binary format, record by record.

    Returns False when the trace cannot be encoded (a corruption produced
    a forward source reference, which the writer rejects by design).
    """
    try:
        with BinaryTraceWriter(path) as writer:
            writer.header(trace.header.num_vars, trace.header.num_original_clauses)
            for record in trace.records():
                if isinstance(record, LearnedClause):
                    writer.learned_clause(record.cid, record.sources)
                elif isinstance(record, LevelZeroAssignment):
                    writer.level_zero(record.var, record.value, record.antecedent)
                elif isinstance(record, FinalConflict):
                    writer.final_conflict(record.cid)
                elif isinstance(record, ClauseDeletion):
                    writer.clause_deletion(record.cid)
                elif isinstance(record, TraceResult):
                    writer.result(record.status)
    except TraceError:
        return False
    return True


# -- verdict parity -----------------------------------------------------------


def test_clean_parity_with_breadth_first_in_memory_and_mmap(tmp_path):
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    bf = BreadthFirstChecker(formula, trace).check()
    assert bf.verified

    path = str(tmp_path / "php.rtb")
    assert dump_binary(trace, path)
    for source in (trace, path):
        report = StreamingWindowChecker(formula, source).check()
        assert report.verified
        assert report.clauses_built == bf.clauses_built
        assert report.resolutions == bf.resolutions


@pytest.mark.parametrize("budget", [None, 500, 50])
def test_budgeted_runs_keep_the_verdict(tmp_path, budget):
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    path = str(tmp_path / "php.rtb")
    assert dump_binary(trace, path)
    baseline = BreadthFirstChecker(formula, path).check()
    report = StreamingWindowChecker(formula, path, memory_budget=budget).check()
    assert report.verified
    assert report.clauses_built == baseline.clauses_built
    assert report.resolutions == baseline.resolutions


@pytest.mark.parametrize("bug", TRACE_BUGS)
def test_fault_matrix_parity_with_breadth_first(tmp_path, bug):
    """Every corrupted trace BF rejects, streaming rejects too — and with
    the same failure kind, on both the in-memory and the mmap'd path."""
    fired = 0
    for seed in range(8):
        formula = pigeonhole(6, 5)
        trace = corrupted_trace(formula, bug, seed=seed)
        if trace is None:
            continue
        fired += 1
        bf = BreadthFirstChecker(formula, trace).check()
        streaming = StreamingWindowChecker(formula, trace, memory_budget=100).check()
        assert streaming.verified == bf.verified
        if not bf.verified:
            assert streaming.failure is not None
            assert streaming.failure.kind == bf.failure.kind

        path = str(tmp_path / f"{bug.name}_{seed}.rtb")
        if dump_binary(trace, path):
            mapped = StreamingWindowChecker(formula, path, memory_budget=100).check()
            assert mapped.verified == bf.verified
            if not bf.verified:
                assert mapped.failure.kind == bf.failure.kind
    assert fired > 0, f"bug {bug} never fired in 8 seeds"


def test_prune_plan_parity(tmp_path):
    from repro.analysis import compute_prune_plan

    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    path = str(tmp_path / "php.rtb")
    assert dump_binary(trace, path)
    plan = compute_prune_plan(path)
    assert plan is not None
    unpruned = StreamingWindowChecker(formula, path, memory_budget=200).check()
    pruned = StreamingWindowChecker(
        formula, path, memory_budget=200, prune_plan=plan
    ).check()
    assert unpruned.verified and pruned.verified
    # Pruning may skip statically dead lemmas but never changes the verdict.
    assert pruned.clauses_built <= unpruned.clauses_built
    bf_pruned = BreadthFirstChecker(formula, path, prune_plan=plan).check()
    assert bf_pruned.verified
    assert pruned.clauses_built == bf_pruned.clauses_built


def test_chunked_counting_parity(tmp_path):
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    path = str(tmp_path / "php.rtb")
    assert dump_binary(trace, path)
    whole = StreamingWindowChecker(formula, path, memory_budget=100).check()
    chunked = StreamingWindowChecker(
        formula, path, memory_budget=100, count_chunk_size=37
    ).check()
    assert whole.verified and chunked.verified
    assert whole.clauses_built == chunked.clauses_built
    assert whole.resolutions == chunked.resolutions


# -- bounded residency --------------------------------------------------------


def test_budget_bounds_residency_and_spills_engage(tmp_path):
    stats = generate(tmp_path / "chain", chain=3000)
    formula = parse_dimacs_file(stats["cnf"])

    unbounded = StreamingWindowChecker(formula, stats["trace"]).check()
    assert unbounded.verified
    free_peak = unbounded.memory["peak_resident_units"]

    budget = 300
    bounded = StreamingWindowChecker(
        formula, stats["trace"], memory_budget=budget
    ).check()
    assert bounded.verified
    memory = bounded.memory
    assert memory["budget_units"] == budget
    # Slack: one in-flight build plus the original handed to the caller.
    assert memory["peak_resident_units"] <= budget + 64
    assert memory["peak_resident_units"] < free_peak
    assert memory["spilled_clauses"] > 0
    assert memory["reloaded_clauses"] == memory["spilled_clauses"]
    assert memory["evicted_originals"] > 0
    assert memory["peak_unique_clauses"] < unbounded.memory["peak_unique_clauses"]
    # Same proof replayed, spills notwithstanding.
    assert bounded.clauses_built == unbounded.clauses_built
    assert bounded.resolutions == unbounded.resolutions


def test_window_stats_report_the_shifting_window(tmp_path):
    stats = generate(tmp_path / "chain", chain=1500)
    formula = parse_dimacs_file(stats["cnf"])
    report = StreamingWindowChecker(
        formula, stats["trace"], memory_budget=300, window_records=512
    ).check()
    assert report.verified
    assert report.window_stats, "streaming reports per-window stats"
    for entry in report.window_stats:
        assert entry["records"] <= 512
        assert {"window", "records", "built", "resident_units"} <= set(entry)
    assert report.memory["windows"] == len(report.window_stats)


def test_memory_stats_survive_report_serialization(tmp_path):
    formula = pigeonhole(6, 5)
    report = StreamingWindowChecker(
        formula, solved_trace(formula), memory_budget=100
    ).check()
    assert report.memory is not None
    round_tripped = CheckReport.from_json(report.to_json())
    assert round_tripped.memory == report.memory
    assert round_tripped.window_stats == report.window_stats


def test_other_checkers_report_memory_high_water_too():
    from repro.checker import DepthFirstChecker, HybridChecker

    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    for checker in (
        BreadthFirstChecker(formula, trace),
        DepthFirstChecker(formula, trace),
        HybridChecker(formula, trace),
    ):
        report = checker.check()
        assert report.verified
        assert report.memory is not None
        assert report.memory["peak_unique_clauses"] > 0
        assert report.memory["peak_store_bytes"] > 0


# -- the degradation ladder ---------------------------------------------------


def ladder_config(**overrides):
    defaults = dict(
        method="df",
        policy="fallback",
        memory_limit=400,
        streaming_threshold_bytes=0,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def test_fallback_ladder_lands_on_streaming(tmp_path):
    stats = generate(tmp_path / "chain", chain=2000)
    formula = parse_dimacs_file(stats["cnf"])
    report = CheckSupervisor(formula, stats["trace"], config=ladder_config()).check()
    assert report.verified
    assert report.method == "streaming"
    methods = [attempt["method"] for attempt in report.degradation]
    assert methods[-1] == "streaming"
    assert "breadth-first" not in methods  # streaming replaced BF as the last rung
    assert any(
        attempt["outcome"] == "memory-out" for attempt in report.degradation[:-1]
    )
    # Attempt records carry the memory high-water marks.
    final = report.degradation[-1]
    assert final["memory"]["peak_resident_units"] <= 400 + 64


def test_threshold_gates_the_streaming_rung(tmp_path):
    stats = generate(tmp_path / "chain", chain=2000)
    formula = parse_dimacs_file(stats["cnf"])
    # Far above the file size: the classic ladder stays, ends at BF, and
    # the starving memory limit makes the whole check fail as before.
    config = ladder_config(streaming_threshold_bytes=1 << 40)
    report = CheckSupervisor(formula, stats["trace"], config=config).check()
    assert not report.verified
    assert [a["method"] for a in report.degradation] == [
        "depth-first",
        "hybrid",
        "breadth-first",
    ]
    # Disabled entirely behaves the same way.
    config = ladder_config(streaming_threshold_bytes=None)
    report = CheckSupervisor(formula, stats["trace"], config=config).check()
    assert not report.verified
    assert "streaming" not in [a["method"] for a in report.degradation]


def test_strict_policy_never_grows_a_ladder(tmp_path):
    stats = generate(tmp_path / "chain", chain=1000)
    formula = parse_dimacs_file(stats["cnf"])
    config = ladder_config(policy="strict", memory_limit=200)
    report = CheckSupervisor(formula, stats["trace"], config=config).check()
    assert not report.verified
    assert [a["method"] for a in report.degradation] == ["depth-first"]


def test_streaming_as_requested_method(tmp_path):
    stats = generate(tmp_path / "chain", chain=1000)
    formula = parse_dimacs_file(stats["cnf"])
    config = SupervisorConfig(method="streaming", memory_window=300)
    report = CheckSupervisor(formula, stats["trace"], config=config).check()
    assert report.verified
    assert report.method == "streaming"
    assert report.memory["budget_units"] == 300


# -- mmap zero-copy decoding --------------------------------------------------


def test_mapped_batches_match_the_record_decoder(tmp_path):
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    path = str(tmp_path / "php.rtb")
    assert dump_binary(trace, path)

    expected = [
        (r.cid, tuple(r.sources))
        for r in iter_binary_records(path)
        if isinstance(r, LearnedClause)
    ]
    got = []
    with MappedBinaryTrace(path) as mapped:
        pos = mapped.payload_start
        while True:
            items, pos = decode_mapped_batch(mapped.view, pos, 64)
            if not items:
                break
            got.extend(
                (item[0], tuple(item[1]))
                for item in items
                if isinstance(item, tuple)
            )
    assert got == expected


def test_mapped_scan_counts_match_a_manual_tally(tmp_path):
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    path = str(tmp_path / "php.rtb")
    assert dump_binary(trace, path)

    manual = {}
    learned = []

    def tally(cid):
        manual[cid] = manual.get(cid, 0) + 1

    for record in iter_binary_records(path):
        if isinstance(record, LearnedClause):
            learned.append(record.cid)
            for src in record.sources:
                tally(src)
        elif isinstance(record, LevelZeroAssignment):
            tally(record.antecedent)
        elif isinstance(record, FinalConflict):
            tally(record.cid)

    with MappedBinaryTrace(path) as mapped:
        headers, max_cid, num_learned, counts, last_use = scan_mapped_learned(
            mapped.view, track_last_use=True
        )
    assert num_learned == len(learned)
    assert max_cid == max(learned)
    assert counts == manual
    # The last-use clock is monotone in stream position: every recorded
    # use position is positive, and a clause used later has a later mark.
    assert last_use, "track_last_use fills the retirement signal"
    assert set(last_use) == set(manual)
    assert all(position > 0 for position in last_use.values())


def test_truncated_mapped_trace_raises_trace_error(tmp_path):
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    path = tmp_path / "php.rtb"
    assert dump_binary(trace, str(path))
    blob = path.read_bytes()
    torn = tmp_path / "torn.rtb"
    torn.write_bytes(blob[: len(blob) - 7])
    with MappedBinaryTrace(str(torn)) as mapped:
        with pytest.raises(TraceError):
            pos = mapped.payload_start
            while True:
                items, pos = decode_mapped_batch(mapped.view, pos, 64)
                if not items:
                    break


def test_truncated_trace_is_a_structured_verdict_not_a_crash(tmp_path):
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    path = tmp_path / "php.rtb"
    assert dump_binary(trace, str(path))
    blob = path.read_bytes()
    torn = tmp_path / "torn.rtb"
    torn.write_bytes(blob[: int(len(blob) * 0.6)])
    report = StreamingWindowChecker(formula, str(torn)).check()
    assert not report.verified
    assert report.failure is not None


def test_streaming_reads_ascii_traces_through_the_generic_path(tmp_path):
    formula = pigeonhole(6, 5)
    trace = solved_trace(formula)
    from repro.trace.io import open_trace_writer

    path = str(tmp_path / "php.trace")
    writer = open_trace_writer(path, fmt="ascii")
    writer.header(trace.header.num_vars, trace.header.num_original_clauses)
    for record in trace.records():
        if isinstance(record, LearnedClause):
            writer.learned_clause(record.cid, record.sources)
        elif isinstance(record, LevelZeroAssignment):
            writer.level_zero(record.var, record.value, record.antecedent)
        elif isinstance(record, FinalConflict):
            writer.final_conflict(record.cid)
        elif isinstance(record, TraceResult):
            writer.result(record.status)
    writer.close()
    report = StreamingWindowChecker(formula, path, memory_budget=150).check()
    bf = BreadthFirstChecker(formula, path).check()
    assert report.verified and bf.verified
    assert report.clauses_built == bf.clauses_built


def test_generated_binary_round_trips_through_read_binary_trace(tmp_path):
    # The generator writes records the stock decoder agrees with.
    stats = generate(tmp_path / "chain", chain=500)
    trace = read_binary_trace(stats["trace"])
    assert trace.header.num_original_clauses == stats["num_original"]
    assert len(trace.learned) == stats["num_learned"]


# -- wiring: CLI and service options ------------------------------------------


def test_cli_stream_flag_routes_to_streaming(tmp_path, capsys):
    from repro.cli import check_main

    stats = generate(tmp_path / "chain", chain=400)
    rc = check_main(
        [stats["cnf"], stats["trace"], "--stream", "--memory-window", "200"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "[streaming]" in out


def test_cli_stream_flag_conflicts(tmp_path):
    from repro.cli import check_main

    stats = generate(tmp_path / "chain", chain=400)
    with pytest.raises(SystemExit):
        check_main([stats["cnf"], stats["trace"], "--stream", "--parallel", "2"])
    with pytest.raises(SystemExit):
        check_main([stats["cnf"], stats["trace"], "--stream", "--method", "bf"])
    with pytest.raises(SystemExit):
        check_main(
            [stats["cnf"], stats["trace"], "--memory-window", "100"]
        )  # needs --stream or --policy fallback
    with pytest.raises(SystemExit):
        check_main(
            [stats["cnf"], stats["trace"], "--streaming-threshold", "0"]
        )  # needs --policy fallback


def test_streaming_options_are_service_addressable():
    from repro.service.fingerprint import KEYED_OPTIONS, fingerprint_options
    from repro.service.scheduler import ALLOWED_JOB_OPTIONS

    assert {"memory_window", "window_records"} <= ALLOWED_JOB_OPTIONS
    assert "memory_window" in KEYED_OPTIONS
    assert "window_records" in KEYED_OPTIONS
    base = fingerprint_options({"method": "streaming"})
    keyed = fingerprint_options({"method": "streaming", "memory_window": 4096})
    assert base != keyed
