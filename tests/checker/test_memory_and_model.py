"""Unit tests for memory accounting and model checking."""

import pytest

from repro.cnf import CnfFormula
from repro.checker import MemoryLimitExceeded, MemoryMeter, check_model


class TestMemoryMeter:
    def test_peak_tracks_high_water_mark(self):
        meter = MemoryMeter()
        meter.allocate(10)
        meter.allocate(5)
        meter.release(12)
        meter.allocate(1)
        assert meter.current == 4
        assert meter.peak == 15

    def test_limit_enforced(self):
        meter = MemoryMeter(limit=10)
        meter.allocate(10)
        with pytest.raises(MemoryLimitExceeded) as excinfo:
            meter.allocate(1)
        assert excinfo.value.context["limit_units"] == 10

    def test_negative_current_is_a_bug(self):
        meter = MemoryMeter()
        meter.allocate(1)
        with pytest.raises(AssertionError):
            meter.release(2)

    def test_unit_helpers(self):
        meter = MemoryMeter()
        assert meter.clause_units(3) == 5
        assert meter.record_units(4) == 6


class TestModelCheck:
    def test_satisfying_model(self):
        formula = CnfFormula(2, [[1, 2], [-1, 2]])
        assert check_model(formula, {1: True, 2: True})

    def test_falsified_clause_reported(self):
        formula = CnfFormula(2, [[1, 2], [-1, -2]])
        result = check_model(formula, {1: True, 2: True})
        assert not result
        assert result.falsified_clause_ids == [2]

    def test_partial_model_that_satisfies(self):
        formula = CnfFormula(3, [[1, 2]])
        result = check_model(formula, {1: True})
        assert result.satisfied

    def test_unassigned_vars_reported_when_clause_fails(self):
        formula = CnfFormula(2, [[1, 2]])
        result = check_model(formula, {1: False})
        assert not result.satisfied
        assert result.unassigned_vars == [2]

    def test_empty_clause_never_satisfied(self):
        formula = CnfFormula(1)
        formula.add_clause([])
        assert not check_model(formula, {1: True})

    def test_empty_formula_satisfied_by_anything(self):
        assert check_model(CnfFormula(0), {})
