"""The checker must catch buggy solvers — the paper's raison d'être."""

import pytest

from repro.cnf import CnfFormula
from repro.checker import BreadthFirstChecker, DepthFirstChecker, HybridChecker
from repro.solver import SolverConfig
from repro.solver.buggy import BugKind, CorruptingTraceWriter, UnsoundLearningSolver, make_buggy_solver
from repro.trace import InMemoryTraceWriter

from tests.conftest import pigeonhole, random_3sat

TRACE_BUGS = [
    BugKind.DROP_SOURCE,
    BugKind.SWAP_SOURCES,
    BugKind.WRONG_ANTECEDENT,
    BugKind.OMIT_LEVEL_ZERO,
    BugKind.WRONG_FINAL_CONFLICT,
]


def _corrupted_trace(formula, bug, seed=0):
    """Solve with an injected trace bug; returns the trace iff the bug fired."""
    inner = InMemoryTraceWriter()
    solver, wrapper = make_buggy_solver(formula, bug, inner, seed=seed)
    result = solver.solve()
    assert result.is_unsat
    if wrapper is not None and not wrapper.corrupted:
        return None
    return inner.to_trace()


@pytest.mark.parametrize("bug", TRACE_BUGS)
def test_depth_first_catches_trace_bugs(bug):
    caught = 0
    fired = 0
    for seed in range(8):
        formula = pigeonhole(6, 5)
        trace = _corrupted_trace(formula, bug, seed=seed)
        if trace is None:
            continue
        fired += 1
        report = DepthFirstChecker(formula, trace).check()
        if not report.verified:
            caught += 1
            assert report.failure is not None
            assert report.failure.kind is not None
    assert fired > 0, f"bug {bug} never fired in 8 seeds"
    assert caught == fired, f"bug {bug}: {fired - caught} corrupted traces passed"


@pytest.mark.parametrize("bug", TRACE_BUGS)
def test_breadth_first_catches_trace_bugs(bug):
    caught = 0
    fired = 0
    for seed in range(8):
        formula = pigeonhole(6, 5)
        trace = _corrupted_trace(formula, bug, seed=seed)
        if trace is None:
            continue
        fired += 1
        report = BreadthFirstChecker(formula, trace).check()
        if not report.verified:
            caught += 1
    assert fired > 0
    assert caught == fired


@pytest.mark.parametrize("bug", TRACE_BUGS)
def test_hybrid_catches_trace_bugs(bug):
    caught = 0
    fired = 0
    for seed in range(8):
        formula = pigeonhole(6, 5)
        trace = _corrupted_trace(formula, bug, seed=seed)
        if trace is None:
            continue
        fired += 1
        report = HybridChecker(formula, trace).check()
        if not report.verified:
            caught += 1
    assert fired > 0
    assert caught == fired


def test_unsound_learning_never_endorsed_on_sat_formulas():
    """The reasoning bug: dropped learned literals can make the solver claim
    UNSAT on satisfiable formulas. The checker's contract (the paper's whole
    point) is that a *wrong* UNSAT claim never verifies. A buggy solver may
    still stumble into a valid proof of a *truly* unsatisfiable formula —
    that is fine: the claim is correct even if the solver is not.
    """
    from repro.solver.reference import reference_is_satisfiable

    wrong_claims_caught = 0
    wrong_claims = 0
    unsat_claims = 0
    for seed in range(40):
        formula = random_3sat(18, 70, seed=seed)
        writer = InMemoryTraceWriter()
        solver = UnsoundLearningSolver(
            formula,
            config=SolverConfig(seed=seed, max_conflicts=3000),
            trace_writer=writer,
            drop_period=2,
        )
        result = solver.solve()
        if not result.is_unsat:
            continue
        unsat_claims += 1
        truly_sat = reference_is_satisfiable(formula)
        report = DepthFirstChecker(formula, writer.to_trace()).check()
        if report.verified:
            # A verified proof is ground truth: the formula must be UNSAT.
            assert not truly_sat, f"seed {seed}: checker endorsed a wrong claim"
        if truly_sat:
            wrong_claims += 1
            if not report.verified:
                wrong_claims_caught += 1
    assert unsat_claims > 0, "unsound solver never claimed UNSAT; grow the instance set"
    assert wrong_claims > 0, "no wrong claims produced; make the bug more aggressive"
    assert wrong_claims_caught == wrong_claims


def test_diagnostics_identify_the_failure_site():
    formula = pigeonhole(6, 5)
    trace = None
    for seed in range(16):
        trace = _corrupted_trace(formula, BugKind.DROP_SOURCE, seed=seed)
        if trace is not None:
            break
    assert trace is not None
    report = DepthFirstChecker(formula, trace).check()
    assert not report.verified
    # Structured context: the failing clause IDs are in the exception.
    assert report.failure.context, "diagnostics should carry context"
    assert "[" in str(report.failure)


def test_corrupting_writer_rejects_reasoning_bug_kind():
    with pytest.raises(ValueError):
        CorruptingTraceWriter(InMemoryTraceWriter(), BugKind.DROP_LEARNED_LITERAL)


def test_clean_solver_passes_where_buggy_fails():
    """Sanity: the harness is not simply rejecting everything."""
    formula = pigeonhole(6, 5)
    writer = InMemoryTraceWriter()
    from repro.solver import solve_formula

    solve_formula(formula, trace_writer=writer)
    assert DepthFirstChecker(formula, writer.to_trace()).check().verified
