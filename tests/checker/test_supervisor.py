"""The resilient checking supervisor: budgets, the degradation ladder,
worker-crash recovery and BF checkpoint/resume.

The fault matrix lives here: a worker SIGKILLed mid-window, a window hung
past its watchdog, and a forced DF memory-out must all end in a structured
report — never an escaped exception — and degrade (or not) per policy.
"""

import os
import pickle

import pytest

from repro.checker import (
    BreadthFirstChecker,
    CheckFailure,
    CheckPolicy,
    CheckSupervisor,
    CheckTimeout,
    CheckpointError,
    Deadline,
    DepthFirstChecker,
    FailureKind,
    MemoryLimitExceeded,
    ParallelWindowedChecker,
    load_checkpoint,
    supervised_check,
)
from repro.checker.parallel import FAULT_ENV
from repro.checker.resolution import ResolutionError
from repro.solver import Solver, SolverConfig
from repro.trace import AsciiTraceWriter, InMemoryTraceWriter

from tests.conftest import pigeonhole


@pytest.fixture(scope="module")
def proof(tmp_path_factory):
    """One UNSAT pigeonhole instance with its trace on disk."""
    formula = pigeonhole(6, 5)
    path = tmp_path_factory.mktemp("supervisor") / "php.trace"
    writer = AsciiTraceWriter(path)
    assert Solver(formula, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    writer.close()
    return formula, str(path)


# -- deadlines ----------------------------------------------------------------


def test_deadline_none_never_expires():
    deadline = Deadline(None)
    assert not deadline.expired()
    assert deadline.remaining() is None
    deadline.check()  # no-op


def test_deadline_zero_trips_immediately():
    deadline = Deadline(0.0)
    assert deadline.expired()
    with pytest.raises(CheckTimeout) as excinfo:
        deadline.check()
    assert excinfo.value.kind is FailureKind.TIMEOUT
    assert excinfo.value.context["timeout_s"] == 0.0


def test_deadline_rejects_negative_timeout():
    with pytest.raises(ValueError):
        Deadline(-1.0)


def test_every_checker_honours_a_zero_deadline(proof):
    formula, path = proof
    from repro.checker import HybridChecker
    from repro.trace import load_trace

    checkers = [
        DepthFirstChecker(formula, load_trace(path), deadline=Deadline(0.0)),
        BreadthFirstChecker(formula, path, deadline=Deadline(0.0)),
        HybridChecker(formula, path, deadline=Deadline(0.0)),
        ParallelWindowedChecker(formula, path, num_workers=1, deadline=Deadline(0.0)),
    ]
    for checker in checkers:
        report = checker.check()
        assert not report.verified, checker
        assert report.failure.kind is FailureKind.TIMEOUT, checker


# -- the degradation ladder ---------------------------------------------------


def test_fallback_recovers_from_df_memory_out(proof):
    """The acceptance scenario: a DF memory-out completes via fallback."""
    formula, path = proof
    from repro.trace import load_trace

    df_peak = DepthFirstChecker(formula, load_trace(path)).check().peak_memory_units
    bf_peak = BreadthFirstChecker(formula, path).check().peak_memory_units
    assert bf_peak < df_peak  # the trade-off the ladder exists for
    limit = (bf_peak + df_peak) // 2

    supervisor = CheckSupervisor(
        formula, path, method="df", policy="fallback", memory_limit=limit
    )
    report = supervisor.check()
    assert report.verified
    assert report.degradation is not None and len(report.degradation) >= 2
    first = report.degradation[0]
    assert first["method"] == "depth-first"
    assert first["outcome"] == "memory-out"
    assert report.degradation[-1]["outcome"] == "verified"
    assert "ladder" in report.summary()


def test_strict_policy_runs_exactly_one_attempt(proof):
    formula, path = proof
    report = supervised_check(
        formula, path, method="df", policy="strict", memory_limit=1
    )
    assert not report.verified
    assert report.failure.kind is FailureKind.MEMORY_OUT
    assert len(report.degradation) == 1


def test_fallback_walks_the_whole_ladder_on_timeout(proof):
    formula, path = proof
    report = supervised_check(formula, path, method="df", policy="fallback", timeout=0.0)
    assert not report.verified
    assert report.failure.kind is FailureKind.TIMEOUT
    assert [a["method"] for a in report.degradation] == [
        "depth-first",
        "hybrid",
        "breadth-first",
    ]
    assert all(a["outcome"] == "timeout" for a in report.degradation)


def test_proof_bugs_do_not_degrade(proof, tmp_path):
    """A bad resolution is a verdict, not a resource failure: one attempt."""
    formula, _ = proof
    path = tmp_path / "bad.trace"
    path.write_text("T 1 2\nR UNSAT\n")  # structurally broken
    report = supervised_check(formula, str(path), method="df", policy="fallback")
    assert not report.verified
    assert report.failure.kind not in (FailureKind.TIMEOUT, FailureKind.MEMORY_OUT)
    assert len(report.degradation) == 1


def test_policy_parse_and_config_validation(proof):
    formula, path = proof
    assert CheckPolicy.parse("strict").ladder("df") == ("df",)
    assert CheckPolicy.parse("fallback").ladder("parallel") == ("parallel", "bf")
    with pytest.raises(ValueError):
        CheckPolicy.parse("yolo")
    with pytest.raises(ValueError):
        CheckPolicy("fallback").ladder("quantum")
    with pytest.raises(TypeError):
        CheckSupervisor(formula, path, not_an_option=1)


def test_supervisor_accepts_in_memory_traces():
    formula = pigeonhole(5, 4)
    writer = InMemoryTraceWriter()
    assert Solver(formula, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    report = supervised_check(formula, writer.to_trace(), method="df")
    assert report.verified


# -- worker-crash recovery ----------------------------------------------------


def _arm_fault(monkeypatch, tmp_path, mode, window, extra=""):
    token = tmp_path / "fault.token"
    token.write_text("armed")
    spec = f"{mode}:{window}:{token}{extra}"
    monkeypatch.setenv(FAULT_ENV, spec)
    return token


def test_sigkilled_worker_is_retried_and_verifies(proof, monkeypatch, tmp_path):
    """The acceptance scenario: SIGKILL one worker; the run still verifies."""
    formula, path = proof
    _arm_fault(monkeypatch, tmp_path, "kill", 1)
    checker = ParallelWindowedChecker(formula, path, num_workers=2, max_retries=2)
    report = checker.check()
    assert report.verified
    assert report.recovery, "the crash must be on the record"
    retries = [e for e in report.recovery if e["event"] == "retry"]
    # A SIGKILL breaks the whole pool, so every in-flight window of that
    # round is retried — the faulted one must be among them.
    assert 1 in {e["window"] for e in retries}
    assert all("crash" in e["reason"] or "hang" in e["reason"] for e in retries)


def test_hung_window_is_killed_by_the_watchdog(proof, monkeypatch, tmp_path):
    formula, path = proof
    _arm_fault(monkeypatch, tmp_path, "hang", 0, extra=":30")
    checker = ParallelWindowedChecker(
        formula, path, num_workers=2, window_timeout=1.5, max_retries=1
    )
    report = checker.check()
    assert report.verified  # the retry runs clean (the fault is one-shot)
    assert any(e["event"] == "retry" for e in report.recovery)


def test_worker_crash_surfaces_after_retry_budget(proof, monkeypatch, tmp_path):
    """With no retries and no in-process fallback, the kind is WORKER_CRASH."""
    formula, path = proof
    _arm_fault(monkeypatch, tmp_path, "kill", 0)
    checker = ParallelWindowedChecker(
        formula, path, num_workers=2, max_retries=0, inprocess_fallback=False
    )
    report = checker.check()  # must not raise (satellite bugfix)
    assert not report.verified
    assert report.failure.kind is FailureKind.WORKER_CRASH
    assert 0 in report.failure.context["windows"]
    assert any(e["event"] == "retries-exhausted" for e in report.recovery)


def test_inprocess_fallback_rescues_exhausted_retries(proof, monkeypatch, tmp_path):
    formula, path = proof
    token = _arm_fault(monkeypatch, tmp_path, "kill", 0)
    checker = ParallelWindowedChecker(formula, path, num_workers=2, max_retries=0)
    report = checker.check()
    assert report.verified
    assert any(e["event"] == "inline" for e in report.recovery)
    assert not token.exists()  # the fault really fired


def test_supervisor_degrades_parallel_to_bf(proof, monkeypatch, tmp_path):
    """A persistent crash exhausts parallel's layers; the ladder lands on BF."""
    formula, path = proof
    _arm_fault(monkeypatch, tmp_path, "kill", 0)
    report = supervised_check(
        formula,
        path,
        method="parallel",
        policy="fallback",
        num_workers=2,
        max_retries=0,
        inprocess_fallback=False,
    )
    assert report.verified
    assert [a["method"] for a in report.degradation] == [
        "parallel-windowed",
        "breadth-first",
    ]
    assert report.degradation[0]["outcome"] == "worker-crash"
    assert report.degradation[0]["recovery_events"] >= 1


# -- checkpoint / resume ------------------------------------------------------


def test_bf_checkpoint_and_resume_round_trip(proof, tmp_path):
    formula, path = proof
    ckpt = tmp_path / "bf.ckpt"
    full = BreadthFirstChecker(
        formula, path, checkpoint_path=str(ckpt), checkpoint_every=25
    ).check()
    assert full.verified and ckpt.exists()

    snapshot = load_checkpoint(str(ckpt))
    assert snapshot.records_consumed > 0

    resumed = BreadthFirstChecker(formula, path, resume_from=str(ckpt))
    report = resumed.check()
    assert report.verified
    assert resumed.resumed and resumed.resume_error is None
    # Counters are cumulative across the interrupted + resumed halves.
    assert report.clauses_built == full.clauses_built
    assert report.peak_memory_units == full.peak_memory_units


def test_interrupted_check_resumes_past_the_interruption(proof, tmp_path):
    """Timeout mid-stream, then resume from the snapshot and finish."""
    formula, path = proof
    ckpt = tmp_path / "bf.ckpt"
    interrupted = BreadthFirstChecker(
        formula,
        path,
        checkpoint_path=str(ckpt),
        checkpoint_every=10,
        deadline=Deadline(0.0),
    ).check()
    assert not interrupted.verified
    assert interrupted.failure.kind is FailureKind.TIMEOUT

    if ckpt.exists():  # a zero deadline may trip before the first snapshot
        resumed = BreadthFirstChecker(formula, path, resume_from=str(ckpt))
        assert resumed.check().verified


def test_mismatched_checkpoint_falls_back_to_a_full_run(proof, tmp_path):
    formula, path = proof
    ckpt = tmp_path / "bf.ckpt"
    assert BreadthFirstChecker(
        formula, path, checkpoint_path=str(ckpt), checkpoint_every=25
    ).check().verified

    other = pigeonhole(5, 4)
    writer = AsciiTraceWriter(tmp_path / "other.trace")
    assert Solver(other, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    writer.close()

    checker = BreadthFirstChecker(
        other, str(tmp_path / "other.trace"), resume_from=str(ckpt)
    )
    report = checker.check()  # wrong trace for this snapshot: never fatal
    assert report.verified
    assert not checker.resumed and checker.resume_error is not None


def test_corrupt_checkpoint_is_a_checkpoint_error(tmp_path):
    garbage = tmp_path / "bad.ckpt"
    garbage.write_bytes(b"not a pickle")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(garbage))


def test_same_shape_different_content_never_cross_resumes(proof, tmp_path):
    """The strengthened fingerprint (content hash, not just shape): a trace
    with identical record counts but different bytes must not resume from
    the other's checkpoint."""
    formula, path = proof
    ckpt = tmp_path / "bf.ckpt"
    assert BreadthFirstChecker(
        formula, path, checkpoint_path=str(ckpt), checkpoint_every=25
    ).check().verified

    # Same parsed records — ASCII readers skip comments — so the shape
    # triple (num_original, total_learned, binary_fast) is identical; only
    # the content hash can tell the two apart.
    twin = tmp_path / "twin.trace"
    twin.write_text(open(path).read() + "# same shape, different bytes\n")

    checker = BreadthFirstChecker(formula, str(twin), resume_from=str(ckpt))
    report = checker.check()
    assert report.verified  # falls back to a full run, never fatal
    assert not checker.resumed
    assert "fingerprint" in checker.resume_error


def test_old_format_checkpoint_is_mismatch_not_crash(proof, tmp_path):
    """A version-1 (shape-only fingerprint) checkpoint from an older build
    is rejected by the version gate and treated as a mismatch."""
    from repro.checker.breadth_first import BfCheckpoint, write_checkpoint

    formula, path = proof
    legacy = BfCheckpoint(
        version=1,
        fingerprint=(formula.num_clauses, 120, False),  # the old 3-tuple
        records_consumed=10,
        last_cid=formula.num_clauses + 10,
        resident={},
        remaining={},
        level_zero=[],
        final_conflicts=[],
        status="",
        clauses_built=10,
        resolutions=50,
        meter_current=0,
        meter_peak=0,
    )
    ckpt = tmp_path / "legacy.ckpt"
    write_checkpoint(legacy, ckpt)

    with pytest.raises(CheckpointError, match="version 1 unsupported"):
        load_checkpoint(str(ckpt))

    checker = BreadthFirstChecker(formula, path, resume_from=str(ckpt))
    assert checker.check().verified  # full run, never fatal
    assert not checker.resumed and "version 1" in checker.resume_error


# -- checkpoint/resume x kernel engine x the ladder (satellite coverage) ------


def test_kernel_checkpoint_resume_round_trip(proof, tmp_path):
    """Resume has only been tested on the reference engine; the kernel
    engine must checkpoint and resume to the same counters."""
    formula, path = proof
    ckpt = tmp_path / "bf.ckpt"
    full = BreadthFirstChecker(
        formula, path, use_kernel=True,
        checkpoint_path=str(ckpt), checkpoint_every=25,
    ).check()
    assert full.verified and ckpt.exists()

    resumed = BreadthFirstChecker(formula, path, use_kernel=True, resume_from=str(ckpt))
    report = resumed.check()
    assert report.verified and resumed.resumed
    assert report.clauses_built == full.clauses_built
    assert report.peak_memory_units == full.peak_memory_units


def test_checkpoints_cross_engines(proof, tmp_path):
    """Snapshots store plain literal tuples, so a checkpoint written under
    one engine resumes under the other."""
    formula, path = proof
    ckpt = tmp_path / "bf.ckpt"
    assert BreadthFirstChecker(
        formula, path, use_kernel=True,
        checkpoint_path=str(ckpt), checkpoint_every=25,
    ).check().verified

    resumed = BreadthFirstChecker(formula, path, use_kernel=False, resume_from=str(ckpt))
    assert resumed.check().verified and resumed.resumed


def test_kernel_timeout_checkpoint_resumes_under_supervisor(proof, tmp_path):
    """Interrupt a kernel-engine BF check mid-stream, then finish it via
    ``supervised_check(..., resume_from=...)`` with the kernel engine."""
    formula, path = proof
    ckpt = tmp_path / "bf.ckpt"
    interrupted = supervised_check(
        formula, path, method="bf", policy="strict", use_kernel=True,
        timeout=0.0, checkpoint_path=str(ckpt), checkpoint_every=10,
    )
    assert not interrupted.verified
    assert interrupted.failure.kind is FailureKind.TIMEOUT

    if ckpt.exists():  # a zero deadline may trip before the first snapshot
        report = supervised_check(
            formula, path, method="bf", policy="strict",
            use_kernel=True, resume_from=str(ckpt),
        )
        assert report.verified


def test_ladder_fallback_writes_and_resumes_kernel_checkpoints(proof, tmp_path):
    """The combined scenario: DF memory-outs, the fallback ladder lands on
    BF with the kernel engine, and that BF rung both honours ``resume_from``
    and writes fresh checkpoints."""
    from repro.checker import HybridChecker

    formula, path = proof
    hybrid_peak = HybridChecker(formula, path).check().peak_memory_units
    bf_peak = BreadthFirstChecker(formula, path).check().peak_memory_units
    assert bf_peak < hybrid_peak  # a budget only the last rung fits in
    limit = (bf_peak + hybrid_peak) // 2

    # First pass: seed a checkpoint from a plain kernel BF run.
    seed_ckpt = tmp_path / "seed.ckpt"
    assert BreadthFirstChecker(
        formula, path, use_kernel=True,
        checkpoint_path=str(seed_ckpt), checkpoint_every=25,
    ).check().verified

    fresh_ckpt = tmp_path / "fresh.ckpt"
    report = supervised_check(
        formula, path, method="df", policy="fallback", use_kernel=True,
        memory_limit=limit, resume_from=str(seed_ckpt),
        # Small interval: the resumed tail still spans several snapshots.
        checkpoint_path=str(fresh_ckpt), checkpoint_every=5,
    )
    assert report.verified
    ladder = [attempt["method"] for attempt in report.degradation]
    assert ladder[0] == "depth-first"
    assert report.degradation[0]["outcome"] == "memory-out"
    assert ladder[-1] == "breadth-first"
    assert all(a["outcome"] == "memory-out" for a in report.degradation[:-1])
    assert fresh_ckpt.exists()  # the BF rung checkpointed its own pass

    # The checkpoint the ladder's BF rung wrote is itself resumable.
    resumed = BreadthFirstChecker(
        formula, path, use_kernel=True, resume_from=str(fresh_ckpt)
    )
    assert resumed.check().verified and resumed.resumed


def test_checkpoint_every_requires_a_path(proof):
    formula, path = proof
    with pytest.raises(ValueError):
        BreadthFirstChecker(formula, path, checkpoint_every=10)


# -- failure pickling (satellite bugfix) --------------------------------------


@pytest.mark.parametrize(
    "failure",
    [
        MemoryLimitExceeded(10, 5),
        CheckTimeout(2.5, 1.0),
        ResolutionError("no complementary pair", cid=42),
        CheckFailure(FailureKind.WORKER_CRASH, "boom", windows=[1, 2]),
    ],
    ids=lambda f: type(f).__name__,
)
def test_check_failures_survive_pickling(failure):
    clone = pickle.loads(pickle.dumps(failure))
    assert type(clone) is type(failure)
    assert clone.kind is failure.kind
    assert clone.message == failure.message
    assert clone.context == failure.context
    assert str(clone) == str(failure)


# -- CLI ----------------------------------------------------------------------


def _cnf_file(formula, tmp_path):
    path = tmp_path / "f.cnf"
    lines = [f"p cnf {formula.num_vars} {formula.num_clauses}"]
    lines += [" ".join(map(str, clause.literals)) + " 0" for clause in formula]
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def test_cli_fallback_prints_the_ladder(proof, tmp_path, capsys):
    from repro.cli import check_main

    formula, trace = proof
    cnf = _cnf_file(formula, tmp_path)
    rc = check_main([cnf, trace, "--method", "df", "--policy", "fallback",
                     "--timeout", "0"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "c attempt 1: depth-first -> timeout" in out
    assert "c attempt 3: breadth-first -> timeout" in out


def test_cli_checkpoint_then_resume(proof, tmp_path, capsys):
    from repro.cli import check_main

    formula, trace = proof
    cnf = _cnf_file(formula, tmp_path)
    ckpt = str(tmp_path / "cli.ckpt")
    assert check_main([cnf, trace, "--method", "bf", "--checkpoint", ckpt,
                       "--checkpoint-every", "50"]) == 0
    assert os.path.exists(ckpt)
    assert check_main([cnf, trace, "--resume", ckpt]) == 0
    assert "Check Succeeded" in capsys.readouterr().out


def test_cli_flag_validation(tmp_path):
    from repro.cli import check_main

    with pytest.raises(SystemExit):
        check_main(["x.cnf", "x.trace", "--checkpoint-every", "5"])
    with pytest.raises(SystemExit):
        check_main(["x.cnf", "x.trace", "--window-timeout", "1"])
    with pytest.raises(SystemExit):
        check_main(["x.cnf", "x.trace", "--resume", "c.ckpt", "--parallel", "2"])
    with pytest.raises(SystemExit):
        check_main(["x.cnf", "x.trace", "--parallel", "2", "--method", "rup"])
