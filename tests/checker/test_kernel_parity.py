"""Kernel vs reference engine: identical verdicts under fault injection.

Every checker runs with ``use_kernel=True`` by default; the frozenset
oracle stays selectable with ``use_kernel=False``. Whatever the trace —
clean or corrupted by any of the injected solver bugs — the two engines
must return the same verdict, the same failure kind, and the same derived
statistics through the breadth-first, depth-first and parallel checkers.
"""

import pytest

from repro.checker import (
    BreadthFirstChecker,
    DepthFirstChecker,
    ParallelWindowedChecker,
)
from repro.solver.buggy import BugKind, make_buggy_solver
from repro.trace import InMemoryTraceWriter
from repro.trace.io import open_trace_writer

from tests.conftest import pigeonhole

TRACE_BUGS = [
    BugKind.DROP_SOURCE,
    BugKind.SWAP_SOURCES,
    BugKind.WRONG_ANTECEDENT,
    BugKind.OMIT_LEVEL_ZERO,
    BugKind.WRONG_FINAL_CONFLICT,
]


def _corrupted_trace(formula, bug, seed=0):
    inner = InMemoryTraceWriter()
    solver, wrapper = make_buggy_solver(formula, bug, inner, seed=seed)
    assert solver.solve().is_unsat
    if wrapper is not None and not wrapper.corrupted:
        return None
    return inner.to_trace()


def _write_binary(trace, path):
    with open_trace_writer(path, fmt="binary") as writer:
        writer.header(trace.header.num_vars, trace.header.num_original_clauses)
        for record in trace.learned.values():
            writer.learned_clause(record.cid, record.sources)
        for entry in trace.level_zero:
            writer.level_zero(entry.var, entry.value, entry.antecedent)
        for cid in trace.final_conflicts:
            writer.final_conflict(cid)
        writer.result(trace.status)
    return str(path)


def _assert_reports_match(kernel_report, reference_report, context):
    assert kernel_report.verified == reference_report.verified, context
    if not kernel_report.verified:
        assert kernel_report.failure is not None and reference_report.failure is not None
        assert kernel_report.failure.kind == reference_report.failure.kind, context
    assert kernel_report.clauses_built == reference_report.clauses_built, context
    assert kernel_report.total_learned == reference_report.total_learned, context
    assert kernel_report.resolutions == reference_report.resolutions, context


@pytest.mark.parametrize("bug", TRACE_BUGS)
def test_breadth_first_engine_parity_under_faults(bug, tmp_path):
    fired = 0
    for seed in range(6):
        formula = pigeonhole(6, 5)
        trace = _corrupted_trace(formula, bug, seed=seed)
        if trace is None:
            continue
        fired += 1
        path = _write_binary(trace, tmp_path / f"bf-{bug.name}-{seed}.rtb")
        kernel = BreadthFirstChecker(formula, path, use_kernel=True).check()
        reference = BreadthFirstChecker(formula, path, use_kernel=False).check()
        _assert_reports_match(kernel, reference, (bug, seed))
    assert fired > 0, f"bug {bug} never fired"


@pytest.mark.parametrize("bug", TRACE_BUGS)
def test_depth_first_engine_parity_under_faults(bug):
    fired = 0
    for seed in range(6):
        formula = pigeonhole(6, 5)
        trace = _corrupted_trace(formula, bug, seed=seed)
        if trace is None:
            continue
        fired += 1
        kernel = DepthFirstChecker(formula, trace, use_kernel=True).check()
        reference = DepthFirstChecker(formula, trace, use_kernel=False).check()
        _assert_reports_match(kernel, reference, (bug, seed))
    assert fired > 0, f"bug {bug} never fired"


@pytest.mark.parametrize("bug", TRACE_BUGS)
def test_parallel_engine_parity_under_faults(bug, tmp_path):
    fired = 0
    for seed in range(3):
        formula = pigeonhole(6, 5)
        trace = _corrupted_trace(formula, bug, seed=seed)
        if trace is None:
            continue
        fired += 1
        path = _write_binary(trace, tmp_path / f"par-{bug.name}-{seed}.rtb")
        kernel = ParallelWindowedChecker(
            formula, path, num_workers=2, use_kernel=True
        ).check()
        reference = ParallelWindowedChecker(
            formula, path, num_workers=2, use_kernel=False
        ).check()
        assert kernel.verified == reference.verified, (bug, seed)
        if not kernel.verified:
            assert kernel.failure.kind == reference.failure.kind, (bug, seed)
    assert fired > 0, f"bug {bug} never fired"


def test_clean_trace_engine_parity_all_checkers(tmp_path):
    formula = pigeonhole(6, 5)
    inner = InMemoryTraceWriter()
    solver, _ = make_buggy_solver(formula, None, inner, seed=0)
    assert solver.solve().is_unsat
    trace = inner.to_trace()
    path = _write_binary(trace, tmp_path / "clean.rtb")

    bf_k = BreadthFirstChecker(formula, path, use_kernel=True).check()
    bf_r = BreadthFirstChecker(formula, path, use_kernel=False).check()
    _assert_reports_match(bf_k, bf_r, "bf clean")
    assert bf_k.verified

    df_k = DepthFirstChecker(formula, trace, use_kernel=True).check()
    df_r = DepthFirstChecker(formula, trace, use_kernel=False).check()
    _assert_reports_match(df_k, df_r, "df clean")
    assert df_k.verified
