"""End-to-end: solve real instances, validate the proofs with every checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf import CnfFormula
from repro.checker import (
    BreadthFirstChecker,
    DepthFirstChecker,
    HybridChecker,
    RupChecker,
    DrupWriter,
)
from repro.solver import SolverConfig, solve_formula
from repro.solver.reference import reference_is_satisfiable
from repro.trace import AsciiTraceWriter, BinaryTraceWriter, InMemoryTraceWriter, load_trace

from tests.conftest import pigeonhole, random_3sat, xor_chain

UNSAT_INSTANCES = [
    ("php32", lambda: pigeonhole(3, 2)),
    ("php54", lambda: pigeonhole(5, 4)),
    ("php65", lambda: pigeonhole(6, 5)),
    ("xor15", lambda: xor_chain(15, parity=True)),
    ("units", lambda: CnfFormula(1, [[1], [-1]])),
    ("r3sat", lambda: random_3sat(25, 180, seed=2)),
]


def _trace_of(formula, **config_kwargs):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(**config_kwargs), trace_writer=writer)
    assert result.is_unsat
    return writer.to_trace()


@pytest.mark.parametrize("name,factory", UNSAT_INSTANCES)
def test_depth_first_verifies(name, factory):
    formula = factory()
    report = DepthFirstChecker(formula, _trace_of(formula)).check()
    assert report.verified, report.summary()


@pytest.mark.parametrize("name,factory", UNSAT_INSTANCES)
def test_breadth_first_verifies(name, factory):
    formula = factory()
    report = BreadthFirstChecker(formula, _trace_of(formula)).check()
    assert report.verified, report.summary()


@pytest.mark.parametrize("name,factory", UNSAT_INSTANCES)
def test_hybrid_verifies(name, factory):
    formula = factory()
    report = HybridChecker(formula, _trace_of(formula)).check()
    assert report.verified, report.summary()


@pytest.mark.parametrize("name,factory", UNSAT_INSTANCES)
def test_rup_verifies(name, factory, tmp_path):
    formula = factory()
    proof = tmp_path / "proof.drup"
    result = solve_formula(formula, drup_writer=DrupWriter(proof))
    assert result.is_unsat
    report = RupChecker(formula, proof).check()
    assert report.verified, report.summary()


@pytest.mark.parametrize("fmt,writer_cls", [("ascii", AsciiTraceWriter), ("binary", BinaryTraceWriter)])
def test_checkers_from_trace_files(fmt, writer_cls, tmp_path):
    formula = pigeonhole(5, 4)
    path = tmp_path / f"t.{fmt}"
    result = solve_formula(formula, trace_writer=writer_cls(path))
    assert result.is_unsat
    assert DepthFirstChecker(formula, load_trace(path)).check().verified
    assert BreadthFirstChecker(formula, path).check().verified
    assert HybridChecker(formula, path).check().verified


def test_bf_chunked_counting_matches_unchunked(tmp_path):
    formula = pigeonhole(6, 5)
    path = tmp_path / "t.trace"
    solve_formula(formula, trace_writer=AsciiTraceWriter(path))
    whole = BreadthFirstChecker(formula, path).check()
    chunked = BreadthFirstChecker(formula, path, count_chunk_size=7).check()
    assert whole.verified and chunked.verified
    assert whole.clauses_built == chunked.clauses_built
    assert whole.peak_memory_units == chunked.peak_memory_units


def test_df_and_hybrid_build_nearly_the_same_subset():
    # Hybrid marks every level-0 antecedent as needed up front; DF builds
    # only what the derivation actually touches, so DF <= hybrid <= BF.
    formula = pigeonhole(6, 5)
    trace = _trace_of(formula)
    df = DepthFirstChecker(formula, trace).check()
    hy = HybridChecker(formula, trace).check()
    assert df.clauses_built <= hy.clauses_built <= trace.num_learned
    assert df.learned_used <= hy.learned_used
    assert df.original_core <= hy.original_core


def test_df_builds_subset_bf_builds_all():
    formula = random_3sat(25, 180, seed=2)
    trace = _trace_of(formula)
    df = DepthFirstChecker(formula, trace).check()
    bf = BreadthFirstChecker(formula, trace).check()
    assert df.clauses_built <= bf.clauses_built
    assert bf.clauses_built == trace.num_learned
    assert 0 < df.built_pct <= 100.0


def test_bf_peak_memory_below_df():
    formula = pigeonhole(7, 6)
    trace = _trace_of(formula)
    df = DepthFirstChecker(formula, trace).check()
    bf = BreadthFirstChecker(formula, trace).check()
    assert df.verified and bf.verified
    assert bf.peak_memory_units < df.peak_memory_units


def test_df_memory_limit_reproduces_memory_out():
    formula = pigeonhole(7, 6)
    trace = _trace_of(formula)
    unlimited = DepthFirstChecker(formula, trace).check()
    limited = DepthFirstChecker(formula, trace, memory_limit=unlimited.peak_memory_units // 2).check()
    assert not limited.verified
    assert limited.failure.kind.value == "memory-out"
    # The BF checker fits in the same budget (Table 2's punchline).
    bf = BreadthFirstChecker(formula, trace, memory_limit=unlimited.peak_memory_units // 2).check()
    assert bf.verified


def test_original_core_is_unsatisfiable():
    formula = pigeonhole(5, 4)
    report = DepthFirstChecker(formula, _trace_of(formula)).check()
    core = formula.restrict_to(report.original_core)
    assert not reference_is_satisfiable(core)


def test_core_excludes_padding_clauses():
    # PHP(4,3) plus irrelevant satisfiable padding: the padding must not
    # enter the proof core.
    base = pigeonhole(4, 3)
    clauses = [list(c.literals) for c in base]
    pad_start = base.num_vars + 1
    clauses.append([pad_start, pad_start + 1])
    clauses.append([-pad_start, pad_start + 1])
    formula = CnfFormula(base.num_vars + 2, clauses)
    report = DepthFirstChecker(formula, _trace_of(formula)).check()
    assert report.verified
    padding_ids = {formula.num_clauses - 1, formula.num_clauses}
    assert not (report.original_core & padding_ids)


def test_checker_rejects_sat_trace(small_sat):
    writer = InMemoryTraceWriter()
    solve_formula(small_sat, trace_writer=writer)
    trace = writer.to_trace()
    for checker in (
        DepthFirstChecker(small_sat, trace),
        BreadthFirstChecker(small_sat, trace),
        HybridChecker(small_sat, trace),
    ):
        report = checker.check()
        assert not report.verified
        assert report.failure.kind.value == "bad-status"


def test_checker_rejects_wrong_formula():
    formula = pigeonhole(5, 4)
    trace = _trace_of(formula)
    other = pigeonhole(4, 3)
    report = DepthFirstChecker(other, trace).check()
    assert not report.verified
    assert report.failure.kind.value == "unknown-clause"


def test_all_checkers_with_deletion_and_restarts():
    formula = pigeonhole(7, 6)
    trace = _trace_of(formula, min_learned_cap=20, max_learned_factor=0.0, restart_first=5)
    assert DepthFirstChecker(formula, trace).check().verified
    assert BreadthFirstChecker(formula, trace).check().verified
    assert HybridChecker(formula, trace).check().verified


@settings(max_examples=25, deadline=None)
@given(data=st.data(), num_vars=st.integers(min_value=2, max_value=10))
def test_every_unsat_random_formula_checks(data, num_vars):
    """Soundness property: every UNSAT claim the solver makes must check."""
    lit = st.integers(min_value=-num_vars, max_value=num_vars).filter(lambda x: x != 0)
    clauses = data.draw(
        st.lists(st.lists(lit, min_size=1, max_size=3), min_size=4, max_size=45)
    )
    formula = CnfFormula(num_vars, clauses)
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, trace_writer=writer)
    assert result.is_sat == reference_is_satisfiable(formula)
    if result.is_unsat:
        trace = writer.to_trace()
        assert DepthFirstChecker(formula, trace).check().verified
        assert BreadthFirstChecker(formula, trace).check().verified
        assert HybridChecker(formula, trace).check().verified
