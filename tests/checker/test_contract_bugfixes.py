"""Regression tests for checker-contract and trace round-trip bugs.

Each test pins one historical bug:

* ``BinaryTraceWriter.result`` encoded every non-SAT status — including
  UNKNOWN — as the UNSAT tag, so an inconclusive trace round-tripped as a
  false UNSAT claim.
* a zero-source learned record crashed ``check()`` (IndexError /
  TraceError) even though ``check()`` documents "never raises".
* a trace with no header was misreported as ``BAD_LEVEL_ZERO``.
* with multiple FinalConflict records the BF checker verified only the
  first but the counting pass charged every conflict reference, leaving
  clauses resident forever and inflating ``peak_memory_units``.
"""

from __future__ import annotations

import pytest

from repro.checker import BreadthFirstChecker, DepthFirstChecker, FailureKind, HybridChecker
from repro.cnf import CnfFormula
from repro.trace import (
    BinaryTraceWriter,
    LearnedClause,
    Trace,
    TraceError,
    TraceHeader,
    read_binary_trace,
)
from repro.trace.binary_format import MAGIC
from repro.trace.records import LevelZeroAssignment


# -- bug 1: binary result round-trip --------------------------------------------


class TestBinaryResultRoundTrip:
    def _roundtrip_status(self, tmp_path, status: str) -> str:
        path = tmp_path / "status.rtb"
        with BinaryTraceWriter(path) as writer:
            writer.header(3, 2)
            writer.result(status)
        return read_binary_trace(path).status

    @pytest.mark.parametrize("status", ["SAT", "UNSAT", "UNKNOWN"])
    def test_every_status_roundtrips(self, tmp_path, status):
        # Before the fix UNKNOWN came back as "UNSAT": a solver that gave
        # up was silently rewritten into claiming unsatisfiability.
        assert self._roundtrip_status(tmp_path, status) == status

    def test_unrecognized_status_is_rejected_at_write_time(self, tmp_path):
        with BinaryTraceWriter(tmp_path / "bogus.rtb") as writer:
            writer.header(3, 2)
            with pytest.raises(TraceError):
                writer.result("MAYBE")

    def test_reader_stays_backward_compatible_with_two_tag_files(self, tmp_path):
        # A file produced by the old writer: header tag + old UNSAT tag only.
        path = tmp_path / "old.rtb"
        path.write_bytes(MAGIC + bytes([0x01, 3, 2]) + bytes([0x06]))
        assert read_binary_trace(path).status == "UNSAT"
        path.write_bytes(MAGIC + bytes([0x01, 3, 2]) + bytes([0x05]))
        assert read_binary_trace(path).status == "SAT"


# -- bug 2: zero-source learned records must not escape check() ------------------


def _trivially_unsat_formula() -> CnfFormula:
    return CnfFormula(1, [[1], [-1]])


def _empty_sources_record(cid: int) -> LearnedClause:
    # The record type rejects zero sources at construction, exactly like a
    # buggy solver's file does at parse time — bypass it the way a corrupted
    # in-memory pipeline would.
    record = LearnedClause.__new__(LearnedClause)
    object.__setattr__(record, "cid", cid)
    object.__setattr__(record, "sources", ())
    return record


def _trace_with_empty_sources() -> Trace:
    trace = Trace(TraceHeader(1, 2))
    trace.learned[3] = _empty_sources_record(3)
    trace.level_zero.append(LevelZeroAssignment(1, True, 1))
    trace.final_conflicts.append(3)
    trace.status = "UNSAT"
    return trace


@pytest.mark.parametrize("checker_cls", [BreadthFirstChecker, DepthFirstChecker, HybridChecker])
def test_empty_sources_record_lands_in_the_report(checker_cls):
    formula = _trivially_unsat_formula()
    report = checker_cls(formula, _trace_with_empty_sources()).check()  # must not raise
    assert not report.verified
    assert report.failure is not None
    assert report.failure.kind is FailureKind.MALFORMED_TRACE


@pytest.mark.parametrize("checker_cls", [BreadthFirstChecker, HybridChecker])
def test_empty_sources_file_lands_in_the_report(tmp_path, checker_cls):
    """The file-level shape of the same fault: 'CL 3' with no sources raises
    TraceError mid-stream; check() must convert it, not propagate it."""
    path = tmp_path / "empty.trace"
    path.write_text("T 1 2\nCL 3\nV 1 1 1\nCONF 3\nR UNSAT\n")
    formula = _trivially_unsat_formula()
    report = checker_cls(formula, path).check()
    assert not report.verified
    assert report.failure is not None
    assert report.failure.kind is FailureKind.MALFORMED_TRACE


# -- bug 3: missing header must be reported as BAD_HEADER ------------------------


@pytest.mark.parametrize("checker_cls", [BreadthFirstChecker, HybridChecker])
def test_headerless_trace_reports_bad_header(tmp_path, checker_cls):
    path = tmp_path / "headerless.trace"
    path.write_text("R UNSAT\n")
    report = checker_cls(_trivially_unsat_formula(), path).check()
    assert not report.verified
    assert report.failure.kind is FailureKind.BAD_HEADER
    assert report.failure.kind is not FailureKind.BAD_LEVEL_ZERO


# -- bug 4: unused final conflicts must not pin clauses resident -----------------


def _conflict_trace(extra_conflict: bool) -> Trace:
    """c1=[1], c2=[-1]; CONF 2 proves UNSAT. Learned clause 3 (the empty
    resolvent of c1,c2) is referenced only by a redundant second CONF."""
    trace = Trace(TraceHeader(1, 2))
    trace.level_zero.append(LevelZeroAssignment(1, True, 1))
    trace.final_conflicts.append(2)
    if extra_conflict:
        trace.learned[3] = LearnedClause(3, (1, 2))
        trace.final_conflicts.append(3)
    trace.status = "UNSAT"
    return trace


def test_unused_final_conflicts_are_released():
    formula = _trivially_unsat_formula()

    baseline = BreadthFirstChecker(formula, _conflict_trace(extra_conflict=False))
    assert baseline.check().verified
    extra = BreadthFirstChecker(formula, _conflict_trace(extra_conflict=True))
    assert extra.check().verified

    # Before the fix, learned clause 3 (referenced only by the unused second
    # CONF) stayed resident forever; its units showed up in meter.current.
    assert extra.meter.current == baseline.meter.current


def test_multi_conflict_accounting_drains_on_real_traces():
    """Appending a duplicate CONF for the real final conflict must not leave
    the final clause resident after the check."""
    from repro.solver import Solver, SolverConfig
    from repro.trace import InMemoryTraceWriter

    from tests.conftest import pigeonhole

    formula = pigeonhole(5, 4)
    writer = InMemoryTraceWriter()
    assert Solver(formula, SolverConfig(), trace_writer=writer).solve().is_unsat

    baseline = BreadthFirstChecker(formula, writer.to_trace())
    assert baseline.check().verified

    final_cid = writer.to_trace().final_conflicts[0]
    duplicated = writer.to_trace()
    duplicated.final_conflicts.append(final_cid)
    dup_checker = BreadthFirstChecker(formula, duplicated)
    assert dup_checker.check().verified
    assert dup_checker.meter.current == baseline.meter.current
