"""The parallel windowed checker: parity with BF, rejection of every
injected fault, the interface cross-check, and the windowing helpers."""

import pickle

import pytest

from repro.checker import (
    BreadthFirstChecker,
    ParallelWindowedChecker,
    FailureKind,
    WindowManifest,
    run_window,
)
from repro.cnf import CnfFormula
from repro.experiments.suite import default_suite
from repro.solver import Solver, SolverConfig
from repro.solver.buggy import BugKind, make_buggy_solver
from repro.trace import (
    AsciiTraceWriter,
    InMemoryTraceWriter,
    iter_window_records,
    load_trace,
    plan_windows,
)

from tests.conftest import pigeonhole


@pytest.fixture(scope="module")
def suite_proofs():
    proofs = []
    for instance in default_suite("small"):
        formula = instance.build()
        writer = InMemoryTraceWriter()
        result = Solver(formula, SolverConfig(), trace_writer=writer).solve()
        assert result.is_unsat
        proofs.append((instance.name, formula, writer.to_trace()))
    return proofs


# -- parity with the breadth-first checker -----------------------------------


def test_parallel_accepts_everything_bf_accepts(suite_proofs):
    for name, formula, trace in suite_proofs:
        bf = BreadthFirstChecker(formula, trace).check()
        par = ParallelWindowedChecker(formula, trace, num_workers=4).check()
        assert bf.verified and par.verified, name
        # Same convention as BF: every learned clause gets built in its window.
        assert par.clauses_built == trace.num_learned == bf.clauses_built, name
        assert par.total_learned == bf.total_learned, name


def test_parallel_parity_across_window_sizes(suite_proofs):
    name, formula, trace = max(suite_proofs, key=lambda p: p[2].num_learned)
    for window_size in (1, 7, trace.num_learned, 10 * trace.num_learned):
        report = ParallelWindowedChecker(
            formula, trace, num_workers=2, window_size=window_size
        ).check()
        assert report.verified, (name, window_size)
        assert report.clauses_built == trace.num_learned


def test_window_stats_cover_the_whole_trace(suite_proofs):
    name, formula, trace = max(suite_proofs, key=lambda p: p[2].num_learned)
    report = ParallelWindowedChecker(formula, trace, num_workers=4).check()
    assert report.verified
    assert report.window_stats is not None and len(report.window_stats) == 4
    assert sum(s["clauses_built"] for s in report.window_stats) == trace.num_learned
    # The merged peak is max-across-workers plus the interface overhead.
    assert report.peak_memory_units >= max(s["peak_units"] for s in report.window_stats)


def test_multiprocess_path_from_a_trace_file(tmp_path):
    formula = pigeonhole(6, 5)
    path = tmp_path / "proof.trace"
    writer = AsciiTraceWriter(path)
    result = Solver(formula, SolverConfig(seed=3), trace_writer=writer).solve()
    writer.close()
    assert result.is_unsat
    bf = BreadthFirstChecker(formula, str(path)).check()
    par = ParallelWindowedChecker(formula, str(path), num_workers=2).check()
    assert bf.verified and par.verified
    assert par.method == "parallel-windowed"
    assert par.resolutions >= bf.resolutions  # interface re-derivation is extra work


# -- rejection parity: every injected fault must still be caught --------------

INJECTED_BUGS = [
    BugKind.DROP_SOURCE,
    BugKind.SWAP_SOURCES,
    BugKind.WRONG_ANTECEDENT,
    BugKind.OMIT_LEVEL_ZERO,
    BugKind.WRONG_FINAL_CONFLICT,
    BugKind.EMPTY_SOURCES,
]


def _corrupted_trace_file(formula, bug, path, seed=0):
    """Solve with an injected trace bug, writing to a file.

    File-based because some structural faults (EMPTY_SOURCES) cannot even be
    represented as in-memory records — the corruption only exists on disk.
    """
    inner = AsciiTraceWriter(path)
    solver, wrapper = make_buggy_solver(formula, bug, inner, seed=seed)
    result = solver.solve()
    inner.close()
    assert result.is_unsat
    if wrapper is not None and not wrapper.corrupted:
        return None
    return str(path)


@pytest.mark.parametrize("bug", INJECTED_BUGS)
@pytest.mark.parametrize("workers", [1, 3])
def test_parallel_catches_injected_bugs(bug, workers, tmp_path):
    caught = 0
    fired = 0
    for seed in range(8):
        formula = pigeonhole(6, 5)
        trace = _corrupted_trace_file(formula, bug, tmp_path / f"s{seed}.trace", seed=seed)
        if trace is None:
            continue
        fired += 1
        report = ParallelWindowedChecker(formula, trace, num_workers=workers).check()
        if not report.verified:
            caught += 1
            assert report.failure is not None
            assert isinstance(report.failure.kind, FailureKind)
    assert fired > 0, f"bug {bug} never fired in 8 seeds"
    assert caught == fired, f"bug {bug}: {fired - caught} corrupted traces passed"


# -- structural failures land in the report with the right kind ---------------


def _write(tmp_path, text):
    path = tmp_path / "trace.txt"
    path.write_text(text)
    return str(path)


def test_headerless_trace_is_bad_header(tmp_path):
    formula = CnfFormula(1, [[1], [-1]])
    path = _write(tmp_path, "R UNSAT\n")
    report = ParallelWindowedChecker(formula, path, num_workers=2).check()
    assert not report.verified
    assert report.failure.kind is FailureKind.BAD_HEADER


def test_sat_claim_is_bad_status(tmp_path):
    formula = CnfFormula(1, [[1], [-1]])
    path = _write(tmp_path, "T 1 2\nR SAT\n")
    report = ParallelWindowedChecker(formula, path, num_workers=2).check()
    assert not report.verified
    assert report.failure.kind is FailureKind.BAD_STATUS


def test_missing_final_conflict(tmp_path):
    formula = CnfFormula(1, [[1], [-1]])
    path = _write(tmp_path, "T 1 2\nCL 3 2 1\nR UNSAT\n")
    report = ParallelWindowedChecker(formula, path, num_workers=2).check()
    assert not report.verified
    assert report.failure.kind is FailureKind.BAD_FINAL_CONFLICT


def test_non_monotone_clause_ids_are_cyclic(tmp_path):
    formula = CnfFormula(1, [[1], [-1]])
    path = _write(tmp_path, "T 1 2\nCL 4 2 1\nCL 3 2 1\nCONF 4\nR UNSAT\n")
    report = ParallelWindowedChecker(formula, path, num_workers=2).check()
    assert not report.verified
    assert report.failure.kind is FailureKind.CYCLIC_TRACE


def test_undefined_final_conflict_is_unknown_clause(tmp_path):
    formula = CnfFormula(1, [[1], [-1]])
    path = _write(tmp_path, "T 1 2\nCL 3 2 1\nCONF 99\nR UNSAT\n")
    report = ParallelWindowedChecker(formula, path, num_workers=2).check()
    assert not report.verified
    assert report.failure.kind is FailureKind.UNKNOWN_CLAUSE


def test_truncated_stream_is_malformed(tmp_path):
    formula = CnfFormula(1, [[1], [-1]])
    path = _write(tmp_path, "T 1 2\nCL 3 2\nCONF 3\nR UNSAT\n")  # one-source CL
    report = ParallelWindowedChecker(formula, path, num_workers=2).check()
    assert not report.verified
    # Whatever layer trips first, it must land in the report, not raise.
    assert report.failure is not None


def test_memory_limit_lands_in_the_report():
    formula = pigeonhole(5, 4)
    writer = InMemoryTraceWriter()
    assert Solver(formula, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    report = ParallelWindowedChecker(
        formula, writer.to_trace(), num_workers=2, memory_limit=3
    ).check()
    assert not report.verified
    assert report.failure.kind is FailureKind.MEMORY_OUT


# -- the interface cross-check ------------------------------------------------


def test_interface_mismatch_is_detected():
    """If a worker's derived import disagrees with the exporter, merging fails."""
    formula = pigeonhole(5, 4)
    writer = InMemoryTraceWriter()
    assert Solver(formula, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    checker = ParallelWindowedChecker(formula, writer.to_trace(), num_workers=2)
    report = checker.check()
    assert report.verified and checker.plan is not None and len(checker.plan) == 2

    good = [
        {"window": 0, "exports": {997: (1, -2)}, "imports": {}},
        {"window": 1, "exports": {}, "imports": {997: (1, -2)}},
    ]
    checker._merge_interfaces(good)  # agrees: no failure

    flipped = [
        {"window": 0, "exports": {997: (1, -2)}, "imports": {}},
        {"window": 1, "exports": {}, "imports": {997: (1, 2)}},
    ]
    with pytest.raises(Exception) as excinfo:
        checker._merge_interfaces(flipped)
    assert excinfo.value.kind is FailureKind.INTERFACE_MISMATCH

    orphan = [{"window": 1, "exports": {}, "imports": {998: (4,)}}]
    with pytest.raises(Exception) as excinfo:
        checker._merge_interfaces(orphan)
    assert excinfo.value.kind is FailureKind.INTERFACE_MISMATCH


def test_run_window_reports_missing_export():
    formula = CnfFormula(1, [[1], [-1]])
    manifest = WindowManifest(
        index=0,
        lo=3,
        hi=4,
        num_original=2,
        records=[(3, (1, 2))],
        closure=[],
        imports=(),
        exports=(3, 99),  # 99 is never defined in this window
        counts={},
        memory_limit=None,
    )
    outcome = run_window(formula, manifest)
    assert outcome["failure"] is not None
    kind_value, message, context = outcome["failure"]
    assert kind_value == FailureKind.UNKNOWN_CLAUSE.value
    assert context["cid"] == 99
    assert pickle.loads(pickle.dumps(outcome)) == outcome  # cross-process safe


# -- windowing helpers --------------------------------------------------------


def test_plan_windows_by_size():
    plan = plan_windows([11, 12, 15, 20, 21], num_original=10, window_size=2)
    assert [w.num_records for w in plan.windows] == [2, 2, 1]
    assert plan.windows[0].lo == 11  # extended down to the first learned ID
    assert plan.windows[0].hi == plan.windows[1].lo  # contiguous, gap-free
    assert plan.windows[-1].hi == 22
    assert plan.window_of(12).index == 0
    assert plan.window_of(13).index == 1  # ID gaps belong to the following window
    assert plan.window_of(20).index == 1
    assert plan.window_of(21).index == 2


def test_plan_windows_by_count():
    plan = plan_windows(range(101, 201), num_original=100, num_windows=4)
    assert len(plan) == 4
    assert sum(w.num_records for w in plan.windows) == 100
    assert plan.windows[0].lo == 101


def test_plan_windows_rejects_both_options():
    with pytest.raises(ValueError):
        plan_windows([11], num_original=10, window_size=2, num_windows=2)


def test_plan_windows_empty_trace():
    plan = plan_windows([], num_original=10, num_windows=4)
    assert len(plan) == 0
    with pytest.raises(ValueError):
        plan.window_of(11)


def test_window_of_rejects_original_clauses():
    plan = plan_windows([11, 12], num_original=10)
    with pytest.raises(ValueError):
        plan.window_of(10)


def test_iter_window_records_filters(tmp_path):
    path = _write(tmp_path, "T 2 2\nCL 3 2 1\nCL 4 3 1\nCL 5 4 2\nCONF 5\nR UNSAT\n")
    cids = [r.cid for r in iter_window_records(path, 4, 6)]
    assert cids == [4, 5]
    trace = load_trace(path)
    assert [r.cid for r in iter_window_records(trace, 3, 4)] == [3]


# -- CLI ----------------------------------------------------------------------


def test_cli_check_parallel(tmp_path, capsys):
    from repro.cli import check_main

    formula = pigeonhole(6, 5)
    cnf = tmp_path / "php.cnf"
    lines = [f"p cnf {formula.num_vars} {formula.num_clauses}"]
    lines += [" ".join(map(str, clause.literals)) + " 0" for clause in formula]
    cnf.write_text("\n".join(lines) + "\n")
    trace = tmp_path / "php.trace"
    writer = AsciiTraceWriter(trace)
    assert Solver(formula, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    writer.close()

    rc = check_main([str(cnf), str(trace), "--parallel", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "parallel-windowed" in out
    assert "c window 0:" in out


def test_cli_rejects_window_size_without_parallel(tmp_path):
    from repro.cli import check_main

    with pytest.raises(SystemExit):
        check_main(["x.cnf", "x.trace", "--window-size", "5"])
