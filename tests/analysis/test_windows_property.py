"""Property: window interfaces are exactly the cone edges that cross windows.

The parallel checker's manifests and the static analyzer's prune plan are
computed by different code paths over the same derivation DAG. This
property pins their agreement on randomly generated (structurally valid)
traces: for every window, the manifest's imported interface clauses are
precisely the resolve-source edges that start at a live in-window clause
and land strictly before the window — and under pruning, "live" means the
backward-reachable cone.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compute_prune_plan
from repro.checker.parallel import ParallelWindowedChecker
from repro.cnf import CnfFormula
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
    assemble_trace,
)
from repro.trace.windows import plan_windows


@st.composite
def synthetic_traces(draw):
    """A structurally valid UNSAT trace: backward sources, monotone IDs."""
    num_original = draw(st.integers(min_value=1, max_value=6))
    num_learned = draw(st.integers(min_value=1, max_value=40))
    records = [TraceHeader(num_vars=num_original + 3, num_original_clauses=num_original)]
    learned_cids = []
    for offset in range(num_learned):
        cid = num_original + 1 + offset
        # Resolution chains shorter than two sources are a structural
        # violation (no plan), so draw at least two (repeats allowed).
        sources = tuple(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=cid - 1),
                    min_size=2,
                    max_size=4,
                )
            )
        )
        records.append(LearnedClause(cid, sources))
        learned_cids.append(cid)
    max_cid = learned_cids[-1]
    trail_vars = draw(
        st.lists(
            st.integers(min_value=1, max_value=num_original + 3),
            max_size=3,
            unique=True,
        )
    )
    for var in trail_vars:
        antecedent = draw(st.integers(min_value=1, max_value=max_cid))
        records.append(LevelZeroAssignment(var, draw(st.booleans()), antecedent))
    records.append(FinalConflict(draw(st.sampled_from(learned_cids))))
    records.append(TraceResult("UNSAT"))
    return assemble_trace(records)


def crossing_imports(trace, live, window):
    """Resolve-source edges from live in-window clauses to earlier windows."""
    num_original = trace.header.num_original_clauses
    imports = set()
    for cid in live:
        if not window.contains(cid):
            continue
        for source in trace.learned[cid].sources:
            if num_original < source < window.lo:
                imports.add(source)
    return imports


def manifests_for(trace, window_size, prune_plan):
    formula = CnfFormula(trace.header.num_vars, [[1]] * trace.header.num_original_clauses)
    checker = ParallelWindowedChecker(
        formula, trace, window_size=window_size, prune_plan=prune_plan
    )
    graph, level_zero, final_conflicts, status = checker._pre_pass()
    assert status == "UNSAT"
    return checker, checker._build_manifests(graph, level_zero, final_conflicts)


@given(trace=synthetic_traces(), window_size=st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_window_imports_are_exactly_the_crossing_cone_edges(trace, window_size):
    plan = compute_prune_plan(trace)
    assert plan is not None  # valid-by-construction UNSAT trace

    for prune_plan, live in ((None, set(trace.learned)), (plan, set(plan.keep))):
        checker, manifests = manifests_for(trace, window_size, prune_plan)
        num_original = trace.header.num_original_clauses

        # Every window's imports match an independent recomputation from the
        # raw trace, and close under resolve sources within the live set.
        expected_exports = [set() for _ in checker.plan.windows]
        for manifest, window in zip(manifests, checker.plan.windows):
            expected = crossing_imports(trace, live, window)
            assert manifest.imports == tuple(sorted(expected)), (
                prune_plan is not None,
                window.index,
            )
            for cid in expected:
                expected_exports[checker.plan.window_of(cid).index].add(cid)
            closure_cids = {cid for cid, _ in manifest.closure}
            assert expected <= closure_cids
            assert closure_cids <= live
            for cid, sources in manifest.closure:
                for source in sources:
                    if source > num_original:
                        assert source in closure_cids

        # Exports are the flip side of the same edges, plus the proof roots
        # (first final conflict and learned level-0 antecedents).
        roots = {cid for cid in trace.final_conflicts[:1] if cid > num_original}
        roots.update(
            entry.antecedent
            for entry in trace.level_zero
            if entry.antecedent > num_original
        )
        for root in roots:
            expected_exports[checker.plan.window_of(root).index].add(root)
        for manifest, expected in zip(manifests, expected_exports):
            assert manifest.exports == tuple(sorted(expected))


@given(trace=synthetic_traces(), window_size=st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_window_counts_partition_each_window(trace, window_size):
    plan = compute_prune_plan(trace)
    assert plan is not None
    window_plan = plan_windows(
        sorted(trace.learned), trace.header.num_original_clauses, window_size=window_size
    )
    counts = plan.window_counts(window_plan)
    assert sum(entry["kept"] for entry in counts) == len(plan.keep)
    assert sum(entry["skipped"] for entry in counts) == len(plan.skip)
    for entry, spec in zip(counts, window_plan.windows):
        assert entry["window"] == spec.index
        assert entry["kept"] + entry["skipped"] == spec.num_records
