"""Property-based corruption testing (hypothesis).

Property: take any structurally valid trace and apply one structure-breaking
corruption — drop a referenced record, swap two definition IDs, truncate a
source list, point a source past the DAG frontier, or strip a mandatory
record — and the analyzer must emit at least one error-severity diagnostic.

The generator builds arbitrary well-formed trace DAGs directly (not via the
solver), so shrinking produces minimal counterexamples.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import analyze_trace
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
)


@st.composite
def valid_traces(draw):
    """A structurally valid UNSAT trace over a random DAG."""
    num_vars = draw(st.integers(min_value=2, max_value=8))
    num_original = draw(st.integers(min_value=2, max_value=10))
    num_learned = draw(st.integers(min_value=2, max_value=12))

    records = [TraceHeader(num_vars, num_original)]
    defined = list(range(1, num_original + 1))
    learned_cids = []
    for offset in range(num_learned):
        cid = num_original + 1 + offset
        chain_len = draw(st.integers(min_value=2, max_value=min(4, len(defined))))
        sources = tuple(
            draw(st.permutations(defined))[:chain_len]
        )
        records.append(LearnedClause(cid, sources))
        defined.append(cid)
        learned_cids.append(cid)

    trail_vars = draw(
        st.lists(
            st.integers(min_value=1, max_value=num_vars),
            unique=True,
            min_size=0,
            max_size=num_vars,
        )
    )
    for var in trail_vars:
        records.append(
            LevelZeroAssignment(var, draw(st.booleans()), draw(st.sampled_from(defined)))
        )
    records.append(FinalConflict(learned_cids[-1]))
    records.append(TraceResult("UNSAT"))
    return records


def referenced_learned_cids(records):
    """Learned IDs that some later record actually points at."""
    num_original = records[0].num_original_clauses
    used = set()
    for record in records:
        if isinstance(record, LearnedClause):
            used.update(s for s in record.sources if s > num_original)
        elif isinstance(record, LevelZeroAssignment):
            if record.antecedent > num_original:
                used.add(record.antecedent)
        elif isinstance(record, FinalConflict):
            if record.cid > num_original:
                used.add(record.cid)
    return sorted(used)


@st.composite
def corrupted_traces(draw):
    """(valid trace, corrupted trace, corruption name)."""
    records = draw(valid_traces())
    learned_indices = [
        i for i, r in enumerate(records) if isinstance(r, LearnedClause)
    ]
    corruption = draw(
        st.sampled_from(
            [
                "drop_referenced_record",
                "swap_two_ids",
                "truncate_sources",
                "dangling_source",
                "drop_header",
                "drop_final_conflict",
                "drop_result",
            ]
        )
    )
    mutated = list(records)
    if corruption == "drop_referenced_record":
        target = draw(st.sampled_from(referenced_learned_cids(records)))
        mutated = [
            r
            for r in mutated
            if not (isinstance(r, LearnedClause) and r.cid == target)
        ]
    elif corruption == "swap_two_ids":
        i, j = sorted(draw(st.permutations(learned_indices))[:2])
        a, b = mutated[i], mutated[j]
        mutated[i] = LearnedClause(b.cid, a.sources)
        mutated[j] = LearnedClause(a.cid, b.sources)
    elif corruption == "truncate_sources":
        index = draw(st.sampled_from(learned_indices))
        record = mutated[index]
        mutated[index] = LearnedClause(record.cid, record.sources[:1])
    elif corruption == "dangling_source":
        index = draw(st.sampled_from(learned_indices))
        record = mutated[index]
        max_cid = max(r.cid for r in records if isinstance(r, LearnedClause))
        bad = max_cid + draw(st.integers(min_value=1, max_value=50))
        mutated[index] = LearnedClause(record.cid, record.sources[:-1] + (bad,))
    elif corruption == "drop_header":
        mutated = [r for r in mutated if not isinstance(r, TraceHeader)]
    elif corruption == "drop_final_conflict":
        mutated = [r for r in mutated if not isinstance(r, FinalConflict)]
    elif corruption == "drop_result":
        mutated = [r for r in mutated if not isinstance(r, TraceResult)]
    return records, mutated, corruption


@given(valid_traces())
@settings(max_examples=60, deadline=None)
def test_generated_traces_are_clean(records):
    report = analyze_trace(records)
    assert report.ok, [str(d) for d in report.errors]


@given(corrupted_traces())
@settings(max_examples=150, deadline=None)
def test_any_single_corruption_trips_at_least_one_rule(case):
    original, mutated, corruption = case
    assert analyze_trace(original).ok
    report = analyze_trace(mutated)
    assert not report.ok, (
        f"corruption {corruption!r} went undetected; "
        f"diagnostics: {[str(d) for d in report.diagnostics]}"
    )
