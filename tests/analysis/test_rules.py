"""Unit tests for the lint rule registry, one rule at a time.

Each test hand-builds a minimal record stream that violates exactly one
structural invariant and asserts the rule fires with the right ID — and
that the surrounding clean stream does not trip anything.
"""

import pytest

from repro.analysis import RULE_REGISTRY, Severity, analyze_trace, default_rules
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
)


def valid_records():
    """A tiny structurally perfect UNSAT trace: 3 originals, 2 learned."""
    return [
        TraceHeader(num_vars=3, num_original_clauses=3),
        LearnedClause(4, (1, 2)),
        LearnedClause(5, (4, 3)),
        LevelZeroAssignment(1, True, 4),
        LevelZeroAssignment(2, False, 5),
        FinalConflict(5),
        TraceResult("UNSAT"),
    ]


def error_rules(records):
    return {d.rule_id for d in analyze_trace(records).errors}


def test_valid_trace_is_clean():
    report = analyze_trace(valid_records())
    assert report.ok
    assert not report.warnings
    assert report.num_learned == 2
    assert report.records_scanned == 7


def test_registry_covers_documented_catalog():
    ids = {cls.rule_id for cls in default_rules()}
    assert ids == {f"T{i:03d}" for i in range(1, 13)}
    for cls in default_rules():
        assert cls.rationale and cls.name and isinstance(cls.severity, Severity)


def test_t001_dangling_learned_source():
    records = valid_records()
    # 7 is below the learned ID (no forward reference) yet never defined.
    records[2] = LearnedClause(9, (4, 7))
    records[4] = LevelZeroAssignment(2, False, 9)
    records[5] = FinalConflict(9)
    assert "T001" in error_rules(records)


def test_t001_dangling_level_zero_antecedent():
    records = valid_records()
    records[3] = LevelZeroAssignment(1, True, 77)
    assert "T001" in error_rules(records)


def test_t001_dangling_final_conflict():
    records = valid_records()
    records[5] = FinalConflict(123)
    assert "T001" in error_rules(records)


def test_t002_self_and_forward_reference():
    records = valid_records()
    records[1] = LearnedClause(4, (1, 4))  # self
    assert "T002" in error_rules(records)
    records[1] = LearnedClause(4, (1, 5))  # forward
    assert "T002" in error_rules(records)


def test_t003_duplicate_learned_id():
    records = valid_records()
    records[2] = LearnedClause(4, (1, 2))  # 4 defined twice
    assert "T003" in error_rules(records)


def test_t003_collision_with_original_range():
    records = valid_records()
    records[1] = LearnedClause(2, (1, 3))
    assert "T003" in error_rules(records)


def test_t004_variable_out_of_range():
    records = valid_records()
    records[3] = LevelZeroAssignment(9, True, 4)  # header says 3 vars
    assert "T004" in error_rules(records)
    records[3] = LevelZeroAssignment(0, True, 4)
    assert "T004" in error_rules(records)


def test_t005_short_chain():
    records = valid_records()
    records[2] = LearnedClause(5, (4,))
    assert "T005" in error_rules(records)


def test_t006_unreachable_is_info_not_error():
    records = valid_records()
    # Clause 6 hangs off the DAG: nothing references it.
    records.insert(3, LearnedClause(6, (1, 2)))
    report = analyze_trace(records)
    assert report.ok, [str(d) for d in report.errors]
    t006 = [d for d in report.diagnostics if d.rule_id == "T006"]
    assert len(t006) == 1 and t006[0].severity is Severity.INFO
    assert report.reachable_learned == 2
    assert report.reachability_pct == pytest.approx(100.0 * 2 / 3)


def test_t006_skipped_when_disabled():
    records = valid_records()
    records.insert(3, LearnedClause(6, (1, 2)))
    report = analyze_trace(records, compute_reachability=False)
    assert report.reachable_learned is None
    assert "T006" not in report.rule_ids()


def test_t007_unsat_without_final_conflict():
    records = [r for r in valid_records() if not isinstance(r, FinalConflict)]
    assert "T007" in error_rules(records)


def test_t007_multiple_final_conflicts_is_warning():
    records = valid_records()
    records.insert(5, FinalConflict(4))
    report = analyze_trace(records)
    assert report.ok
    assert any(d.rule_id == "T007" for d in report.warnings)


def test_t008_missing_header():
    records = valid_records()[1:]
    assert "T008" in error_rules(records)


def test_t008_duplicate_header():
    records = valid_records()
    records.insert(1, TraceHeader(3, 3))
    assert "T008" in error_rules(records)


def test_t009_missing_result():
    records = valid_records()[:-1]
    assert "T009" in error_rules(records)


def test_t009_unknown_result_is_warning():
    records = valid_records()[:-1] + [TraceResult("UNKNOWN")]
    # An UNKNOWN trace legitimately has no CONF either; strip it too.
    records = [r for r in records if not isinstance(r, FinalConflict)]
    report = analyze_trace(records)
    assert report.ok
    assert any(d.rule_id == "T009" for d in report.warnings)


def test_t010_non_monotonic_learned_ids():
    records = [
        TraceHeader(3, 3),
        LearnedClause(6, (1, 2)),
        LearnedClause(4, (1, 3)),  # goes backwards without duplicating
        LevelZeroAssignment(1, True, 6),
        FinalConflict(4),
        TraceResult("UNSAT"),
    ]
    fired = error_rules(records)
    assert "T010" in fired
    assert "T003" not in fired  # not a duplicate, strictly an ordering issue


def test_t011_conflicting_trail_assignment():
    records = valid_records()
    records.insert(4, LevelZeroAssignment(1, False, 5))
    assert "T011" in error_rules(records)


def test_t011_repeated_identical_assignment_is_warning():
    records = valid_records()
    records.insert(4, LevelZeroAssignment(1, True, 5))
    report = analyze_trace(records)
    assert report.ok
    assert any(d.rule_id == "T011" for d in report.warnings)


def test_rule_filter_runs_only_selected_rules():
    records = valid_records()
    records[2] = LearnedClause(5, (4,))  # T005 violation
    records[3] = LevelZeroAssignment(9, True, 4)  # T004 violation
    report = analyze_trace(records, rules=["T004"])
    assert report.rule_ids() == {"T004"}


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        analyze_trace(valid_records(), rules=["T999"])


def test_diagnostics_carry_structured_context():
    records = valid_records()
    records[2] = LearnedClause(9, (4, 7))
    records[4] = LevelZeroAssignment(2, False, 9)
    records[5] = FinalConflict(9)
    report = analyze_trace(records)
    diag = next(d for d in report.errors if d.rule_id == "T001")
    assert diag.record_index == 2
    assert 7 in diag.cids and 9 in diag.cids
    assert diag.context["source"] == 7
    payload = diag.to_dict()
    assert payload["rule"] == "T001" and payload["severity"] == "error"
    assert "T001" in str(diag)


def test_registry_is_extensible():
    from repro.analysis import Rule, register_rule

    class CustomRule(Rule):
        rule_id = "X900"
        name = "custom"
        severity = Severity.WARNING
        rationale = "test-only"

        def finish(self, state):
            self.report("custom rule ran")

    register_rule(CustomRule)
    try:
        report = analyze_trace(valid_records(), rules=["X900"])
        assert report.rule_ids() == {"X900"}
    finally:
        del RULE_REGISTRY["X900"]
