"""precheck=True: the linter as a fast-fail gate in front of all checkers."""

import pytest

from repro.checker import (
    BreadthFirstChecker,
    DepthFirstChecker,
    FailureKind,
    HybridChecker,
    run_precheck,
)
from repro.checker.errors import CheckFailure
from repro.solver import Solver, SolverConfig
from repro.solver.buggy import BugKind, make_buggy_solver
from repro.trace import AsciiTraceWriter, InMemoryTraceWriter, load_trace

from tests.conftest import pigeonhole


@pytest.fixture(scope="module")
def clean(tmp_path_factory):
    formula = pigeonhole(6, 5)
    path = tmp_path_factory.mktemp("precheck") / "clean.trace"
    result = Solver(formula, SolverConfig(), trace_writer=AsciiTraceWriter(path)).solve()
    assert result.is_unsat
    return formula, path


def corrupt_structurally(formula, bug=BugKind.TRUNCATE_SOURCES):
    for seed in range(16):
        inner = InMemoryTraceWriter()
        solver, wrapper = make_buggy_solver(formula, bug, inner, seed=seed)
        assert solver.solve().is_unsat
        if wrapper.corrupted:
            return inner.to_trace()
    raise AssertionError("bug never fired")


@pytest.mark.parametrize("method", ["df", "bf", "hybrid"])
def test_precheck_passes_clean_traces_and_still_verifies(clean, method):
    formula, path = clean
    if method == "df":
        checker = DepthFirstChecker(formula, load_trace(path), precheck=True)
    elif method == "bf":
        checker = BreadthFirstChecker(formula, path, precheck=True)
    else:
        checker = HybridChecker(formula, path, precheck=True)
    report = checker.check()
    assert report.verified
    assert checker.precheck_report is not None and checker.precheck_report.ok


@pytest.mark.parametrize("method", ["df", "bf", "hybrid"])
def test_precheck_rejects_structural_garbage_before_replay(clean, method):
    formula, _ = clean
    trace = corrupt_structurally(formula)
    if method == "df":
        checker = DepthFirstChecker(formula, trace, precheck=True)
    elif method == "bf":
        checker = BreadthFirstChecker(formula, trace, precheck=True)
    else:
        checker = HybridChecker(formula, trace, precheck=True)
    report = checker.check()
    assert not report.verified
    assert report.failure.kind is FailureKind.STATIC_PRECHECK
    assert "T005" in report.failure.context["rules"]
    # Fast-fail means *no replay work at all*.
    assert report.resolutions == 0
    assert report.clauses_built == 0


def test_precheck_off_reaches_the_replay_stage(clean):
    formula, _ = clean
    trace = corrupt_structurally(formula)
    report = DepthFirstChecker(formula, trace).check()
    assert not report.verified
    assert report.failure.kind is not FailureKind.STATIC_PRECHECK


def test_run_precheck_returns_report_on_clean_input(clean):
    formula, path = clean
    report = run_precheck(str(path))
    assert report.ok and report.num_learned > 0


def test_run_precheck_raises_with_rule_context(clean):
    formula, _ = clean
    trace = corrupt_structurally(formula, BugKind.OMIT_FINAL_CONFLICT)
    with pytest.raises(CheckFailure) as excinfo:
        run_precheck(trace)
    assert excinfo.value.kind is FailureKind.STATIC_PRECHECK
    assert excinfo.value.context["rules"] == ["T007"]
