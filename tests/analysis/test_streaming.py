"""Streaming-mode guarantees: no Trace materialization, zero resolution.

The acceptance bar for the analyzer is behavioural, not aspirational, so
both claims are enforced with spies: ``assemble_trace`` (the only way to
build a ``Trace`` from a record stream) is poisoned during file analysis,
and ``repro.checker.resolution.resolve`` is poisoned during every pass.
"""

import pytest

from repro.analysis import analyze_trace
from repro.solver import Solver, SolverConfig
from repro.trace import AsciiTraceWriter, BinaryTraceWriter, load_trace

from tests.conftest import pigeonhole, random_3sat


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lint-traces")
    formula = pigeonhole(6, 5)
    ascii_path = directory / "php.trace"
    binary_path = directory / "php.rtb"
    result = Solver(formula, SolverConfig(), trace_writer=AsciiTraceWriter(ascii_path)).solve()
    assert result.is_unsat
    Solver(formula, SolverConfig(), trace_writer=BinaryTraceWriter(binary_path)).solve()
    return ascii_path, binary_path


def test_ascii_and_binary_streams_agree(trace_files):
    ascii_path, binary_path = trace_files
    ascii_report = analyze_trace(ascii_path)
    binary_report = analyze_trace(binary_path)
    assert ascii_report.ok and binary_report.ok
    assert ascii_report.streaming and binary_report.streaming
    assert ascii_report.num_learned == binary_report.num_learned
    assert ascii_report.reachable_learned == binary_report.reachable_learned
    assert ascii_report.records_scanned == binary_report.records_scanned


def test_binary_streaming_never_materializes_a_trace(trace_files, monkeypatch):
    """Acceptance: streaming mode must not build the full in-memory Trace."""
    _, binary_path = trace_files

    def poisoned(*args, **kwargs):
        raise AssertionError("analyzer materialized a Trace during streaming")

    import repro.trace.io
    import repro.trace.records

    monkeypatch.setattr(repro.trace.records, "assemble_trace", poisoned)
    monkeypatch.setattr(repro.trace.io, "load_trace", poisoned)
    report = analyze_trace(binary_path)
    assert report.ok and report.streaming and report.num_learned > 0


def test_analyzer_performs_zero_resolutions(trace_files, monkeypatch):
    """Acceptance: the linter never resolves — poison the only resolve()."""
    ascii_path, _ = trace_files
    calls = []

    import repro.checker.resolution

    def spy(*args, **kwargs):
        calls.append(args)
        raise AssertionError("static analysis performed a resolution step")

    monkeypatch.setattr(repro.checker.resolution, "resolve", spy)
    report = analyze_trace(ascii_path)
    assert report.ok
    assert calls == []
    # Same guarantee for the in-memory path.
    report = analyze_trace(load_trace(ascii_path))
    assert report.ok
    assert calls == []


def test_analysis_package_never_imports_the_checker():
    """Independence by construction: the linter must not lean on replay code.

    (``import repro`` itself pulls in the checker package, so this is a
    static check over the analysis package's own source.)
    """
    import ast
    from pathlib import Path

    import repro.analysis

    package_dir = Path(repro.analysis.__file__).parent
    for path in sorted(package_dir.glob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module or ""]
            else:
                continue
            for name in names:
                assert not name.startswith("repro.checker"), (
                    f"{path.name} imports {name}: the analyzer must stay "
                    "independent of the replay machinery"
                )
                assert not name.startswith("repro.solver"), path.name


def test_malformed_ascii_file_is_a_diagnostic_not_a_crash(tmp_path):
    path = tmp_path / "garbled.trace"
    path.write_text("T 3 3\nCL 4 1 2\nCL not-a-number\n")
    report = analyze_trace(path)
    assert not report.ok
    t012 = [d for d in report.errors if d.rule_id == "T012"]
    assert len(t012) == 1
    assert t012[0].record_index == 2  # the third record is the torn one


def test_truncated_binary_file_is_a_diagnostic_not_a_crash(trace_files, tmp_path):
    _, binary_path = trace_files
    blob = binary_path.read_bytes()
    torn = tmp_path / "torn.rtb"
    torn.write_bytes(blob[: len(blob) - 3])
    report = analyze_trace(torn)
    assert "T012" in {d.rule_id for d in report.errors} or not report.ok


def test_reference_generator_suite_lints_clean(tmp_path):
    """Acceptance: every reference-solver trace from the generator suite
    passes with zero errors (and zero warnings)."""
    from repro.generators import pigeonhole as php_gen, random_ksat

    instances = [
        php_gen(5, 4),
        php_gen(6, 5),
        random_3sat(16, 90, seed=3),  # over-constrained: very likely UNSAT
        random_ksat(14, 80, k=3, seed=7),
    ]
    checked = 0
    for i, formula in enumerate(instances):
        path = tmp_path / f"ref{i}.trace"
        result = Solver(formula, SolverConfig(seed=i), trace_writer=AsciiTraceWriter(path)).solve()
        if not result.is_unsat:
            continue
        checked += 1
        report = analyze_trace(path)
        assert report.ok, [str(d) for d in report.errors]
        assert not report.warnings, [str(d) for d in report.warnings]
    assert checked >= 2
