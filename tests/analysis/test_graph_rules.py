"""The graph-tier lint rules T013–T017, one rule at a time.

These rules need the whole derivation DAG, so they only run under
``analyze_trace(..., graph=True)`` (the ``repro lint-trace --graph`` /
``repro analyze`` surface). The default pass must never fire them — their
absence from ``default_rules()`` is what keeps existing verdicts stable.
"""

import pytest

from repro.analysis import analyze_trace, default_rules, graph_rules
from repro.trace.records import (
    ClauseDeletion,
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
)


def valid_records():
    return [
        TraceHeader(num_vars=3, num_original_clauses=3),
        LearnedClause(4, (1, 2)),
        LearnedClause(5, (4, 3)),
        LevelZeroAssignment(1, True, 4),
        LevelZeroAssignment(2, False, 5),
        FinalConflict(5),
        TraceResult("UNSAT"),
    ]


def rule_ids(records, graph=True):
    report = analyze_trace(records, graph=graph)
    return {d.rule_id for d in report.diagnostics}


def diagnostics_for(records, rule_id):
    report = analyze_trace(records, graph=True)
    return [d for d in report.diagnostics if d.rule_id == rule_id]


def test_graph_rules_are_not_in_the_default_registry():
    default_ids = {cls.rule_id for cls in default_rules()}
    graph_ids = {cls.rule_id for cls in graph_rules()}
    assert graph_ids == {"T013", "T014", "T015", "T016", "T017"}
    assert not (default_ids & graph_ids)
    for cls in graph_rules():
        assert cls.graph_only and cls.needs_graph
        assert cls.rationale and cls.name


def test_clean_trace_fires_no_graph_rules():
    assert not (rule_ids(valid_records()) & {"T013", "T014", "T015", "T016", "T017"})


# -- T013: dead lemma ---------------------------------------------------------


def test_t013_fires_per_dead_lemma():
    records = valid_records()
    records.insert(3, LearnedClause(6, (5, 1)))  # nothing reaches cid 6
    found = diagnostics_for(records, "T013")
    assert len(found) == 1
    assert found[0].cids == (6,)


def test_t013_silent_without_graph_flag():
    records = valid_records()
    records.insert(3, LearnedClause(6, (5, 1)))
    assert "T013" not in rule_ids(records, graph=False)


def test_t013_silent_on_sat_trace():
    records = [
        TraceHeader(num_vars=2, num_original_clauses=2),
        LearnedClause(3, (1, 2)),
        TraceResult("SAT"),
    ]
    assert "T013" not in rule_ids(records)


def test_t013_overflow_is_summarized():
    records = [TraceHeader(num_vars=64, num_original_clauses=3)]
    for offset in range(30):
        records.append(LearnedClause(4 + offset, (1, 2)))
    records += [
        LearnedClause(40, (1, 3)),
        FinalConflict(40),
        LevelZeroAssignment(1, True, 40),
        TraceResult("UNSAT"),
    ]
    found = diagnostics_for(records, "T013")
    assert 0 < len(found) <= 26  # capped + one summary line


# -- T014: dependency cycle ---------------------------------------------------


def test_t014_fires_on_mutual_dependency():
    records = [
        TraceHeader(num_vars=3, num_original_clauses=3),
        LearnedClause(4, (1, 5)),
        LearnedClause(5, (4, 2)),
        FinalConflict(5),
        TraceResult("UNSAT"),
    ]
    found = diagnostics_for(records, "T014")
    assert found and found[0].severity.value == "error"


def test_t014_silent_on_acyclic_forward_reference():
    # Forward but acyclic: T002 fires, T014 must not cry wolf.
    records = [
        TraceHeader(num_vars=3, num_original_clauses=3),
        LearnedClause(4, (1, 5)),
        LearnedClause(5, (1, 2)),
        FinalConflict(5),
        TraceResult("UNSAT"),
    ]
    ids = rule_ids(records)
    assert "T002" in ids
    assert "T014" not in ids


# -- T015: use after deletion -------------------------------------------------


def test_t015_fires_on_use_after_deletion():
    records = [
        TraceHeader(num_vars=3, num_original_clauses=3),
        LearnedClause(4, (1, 2)),
        ClauseDeletion(4),
        LearnedClause(5, (4, 3)),  # resolves from the deleted clause
        LevelZeroAssignment(1, True, 5),
        FinalConflict(5),
        TraceResult("UNSAT"),
    ]
    found = diagnostics_for(records, "T015")
    assert any(d.severity.value == "error" for d in found)


def test_t015_silent_when_deletion_follows_last_use():
    records = valid_records()
    records.insert(6, ClauseDeletion(4))  # after every use of cid 4
    errors = [d for d in diagnostics_for(records, "T015")
              if d.severity.value == "error"]
    assert not errors


def test_t015_warns_on_double_delete():
    records = valid_records()
    records.insert(6, ClauseDeletion(5))
    records.insert(7, ClauseDeletion(5))
    found = diagnostics_for(records, "T015")
    assert any("delet" in d.message for d in found)


def test_t015_warns_on_deleting_undefined_clause():
    records = valid_records()
    records.insert(6, ClauseDeletion(99))
    assert diagnostics_for(records, "T015")


# -- T016: redundant re-derivation --------------------------------------------


def test_t016_fires_on_identical_resolve_chain():
    records = valid_records()
    records.insert(3, LearnedClause(6, (1, 2)))  # same chain as cid 4
    found = diagnostics_for(records, "T016")
    assert len(found) == 1
    assert found[0].cids == (6, 4)


def test_t016_silent_on_distinct_chains():
    assert not diagnostics_for(valid_records(), "T016")


# -- T017: suspicious core shape ----------------------------------------------


def test_t017_fires_when_no_original_clause_is_touched():
    # The cone exists but bottoms out nowhere: the final conflict's chain
    # references an undefined id, so no original clause is ever reached.
    records = [
        TraceHeader(num_vars=3, num_original_clauses=3),
        LearnedClause(4, (77, 88)),
        LevelZeroAssignment(1, True, 4),
        FinalConflict(4),
        TraceResult("UNSAT"),
    ]
    assert diagnostics_for(records, "T017")


def test_t017_silent_on_grounded_proof():
    assert not diagnostics_for(valid_records(), "T017")


# -- interaction with the fault matrix ---------------------------------------


def test_graph_pass_adds_no_false_positives_on_replay_only_bugs():
    """Semantically corrupt but structurally clean traces must stay clean
    under the graph tier: T014/T015/T017 are error rules and a false error
    here would flip a lint verdict the checkers own."""
    from repro.solver.buggy import BugKind, make_buggy_solver
    from repro.trace import InMemoryTraceWriter

    from tests.conftest import pigeonhole
    from tests.analysis.test_fault_matrix import NEEDS_REPLAY

    checked = 0
    for bug in NEEDS_REPLAY:
        for seed in range(4):
            inner = InMemoryTraceWriter()
            solver, wrapper = make_buggy_solver(pigeonhole(6, 5), bug, inner, seed=seed)
            assert solver.solve().is_unsat
            if wrapper is not None and not wrapper.corrupted:
                continue
            checked += 1
            report = analyze_trace(inner.records, graph=True)
            assert report.ok, (bug, seed, [str(d) for d in report.errors])
    assert checked > 0
