"""The fault matrix: which buggy-solver variants are caught statically.

This pins the division of labour between the linter and the checkers:

* **Structural bugs** break the trace DAG itself — the static analyzer must
  flag them with an *exact* rule ID, before any resolution happens.
* **Semantic bugs** leave a structurally well-formed trace — the linter
  must stay silent (no false positives) and the resolution-replaying
  checkers genuinely are the only line of defence.
"""

import pytest

from repro.analysis import analyze_trace
from repro.checker import DepthFirstChecker
from repro.solver.buggy import BugKind, make_buggy_solver
from repro.trace import InMemoryTraceWriter

from tests.conftest import pigeonhole

# bug kind -> the one rule ID that must catch it statically
STATICALLY_CAUGHT = {
    BugKind.TRUNCATE_SOURCES: "T005",
    BugKind.FORWARD_SOURCE: "T002",
    BugKind.DUPLICATE_CID: "T003",
    BugKind.OMIT_FINAL_CONFLICT: "T007",
    BugKind.DANGLING_ANTECEDENT: "T001",
}

# Bug kinds whose traces are structurally perfect: only replay catches them.
NEEDS_REPLAY = [
    BugKind.DROP_SOURCE,
    BugKind.SWAP_SOURCES,
    BugKind.WRONG_ANTECEDENT,
    BugKind.OMIT_LEVEL_ZERO,
    BugKind.WRONG_FINAL_CONFLICT,
]

SEEDS = range(8)


def corrupted_records(formula, bug, seed):
    """Solve with an injected bug; the raw record list iff the bug fired.

    Record list rather than ``Trace``: assembly itself rejects duplicate
    IDs, and the linter must see the stream exactly as a file would hold it.
    """
    inner = InMemoryTraceWriter()
    solver, wrapper = make_buggy_solver(formula, bug, inner, seed=seed)
    result = solver.solve()
    assert result.is_unsat
    if wrapper is not None and not wrapper.corrupted:
        return None
    return inner.records


@pytest.mark.parametrize("bug", sorted(STATICALLY_CAUGHT, key=lambda b: b.value))
def test_structural_bugs_are_caught_statically_with_exact_rule(bug):
    expected_rule = STATICALLY_CAUGHT[bug]
    fired = caught = 0
    for seed in SEEDS:
        records = corrupted_records(pigeonhole(6, 5), bug, seed)
        if records is None:
            continue
        fired += 1
        report = analyze_trace(records)
        assert not report.ok, f"{bug}: linter accepted a corrupted trace (seed {seed})"
        if expected_rule in {d.rule_id for d in report.errors}:
            caught += 1
    assert fired > 0, f"bug {bug} never fired in {len(SEEDS)} seeds"
    assert caught == fired, f"{bug}: {fired - caught} traces missed rule {expected_rule}"


@pytest.mark.parametrize("bug", sorted(NEEDS_REPLAY, key=lambda b: b.value))
def test_semantic_bugs_are_invisible_statically_but_caught_by_replay(bug):
    fired = lint_clean = replay_caught = 0
    for seed in SEEDS:
        formula = pigeonhole(6, 5)
        records = corrupted_records(formula, bug, seed)
        if records is None:
            continue
        fired += 1
        report = analyze_trace(records)
        if report.ok:
            lint_clean += 1
        trace = InMemoryTraceWriter()
        trace.records = list(records)
        if not DepthFirstChecker(formula, trace.to_trace()).check().verified:
            replay_caught += 1
    assert fired > 0, f"bug {bug} never fired in {len(SEEDS)} seeds"
    assert lint_clean == fired, (
        f"{bug}: the linter false-positived on a structurally valid trace"
    )
    assert replay_caught == fired, f"{bug}: the DF checker missed a corrupted trace"


def test_unsound_learning_is_invisible_statically():
    """The reasoning bug writes a perfectly-shaped trace; only replay can
    tell that the recorded sources do not reproduce the solver's clauses."""
    from repro.solver import SolverConfig
    from repro.solver.buggy import UnsoundLearningSolver

    from tests.conftest import random_3sat

    analyzed = 0
    for seed in range(20):
        formula = random_3sat(18, 70, seed=seed)
        writer = InMemoryTraceWriter()
        solver = UnsoundLearningSolver(
            formula,
            config=SolverConfig(seed=seed, max_conflicts=3000),
            trace_writer=writer,
            drop_period=2,
        )
        if not solver.solve().is_unsat:
            continue
        analyzed += 1
        report = analyze_trace(writer.records)
        assert report.ok, [str(d) for d in report.errors]
    assert analyzed > 0


def test_empty_sources_is_caught_statically_as_malformed(tmp_path):
    """A zero-source CL record is rejected by the record type itself, so it
    only survives through file-backed writers; the linter reports the torn
    stream as T012 (malformed record) rather than crashing."""
    from repro.solver.buggy import make_buggy_solver
    from repro.trace import AsciiTraceWriter

    fired = 0
    for seed in SEEDS:
        formula = pigeonhole(6, 5)
        path = tmp_path / f"empty_sources_{seed}.trace"
        writer = AsciiTraceWriter(path)
        solver, wrapper = make_buggy_solver(
            formula, BugKind.EMPTY_SOURCES, writer, seed=seed
        )
        result = solver.solve()
        writer.close()
        assert result.is_unsat
        if wrapper is None or not wrapper.corrupted:
            continue
        fired += 1
        report = analyze_trace(str(path))
        assert not report.ok
        assert "T012" in {d.rule_id for d in report.errors}
    assert fired > 0


def test_matrix_is_exhaustive_over_bug_kinds():
    """Every BugKind is classified; a new kind must pick a side."""
    classified = (
        set(STATICALLY_CAUGHT)
        | set(NEEDS_REPLAY)
        | {BugKind.DROP_LEARNED_LITERAL, BugKind.EMPTY_SOURCES}
    )
    assert classified == set(BugKind)
