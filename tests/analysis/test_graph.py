"""The static derivation-graph analyzer: cone, stats, prune plans.

The load-bearing claim is §3.2 turned static: the backward-reachable cone
from the final conflict (plus the level-0 antecedents) is exactly the set
of learned clauses a checker must build. These tests pin that equivalence
against the depth-first checker's dynamic discovery, and pin the safety
valve — no plan for anything structurally suspect.
"""

import pytest

from repro.analysis import analyze_trace, build_graph, compute_prune_plan
from repro.checker import DepthFirstChecker
from repro.solver import SolverConfig, solve_formula
from repro.trace import InMemoryTraceWriter
from repro.trace.records import (
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
)

from tests.conftest import pigeonhole, random_3sat, xor_chain


def solved_trace(formula, **kwargs):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(**kwargs), trace_writer=writer)
    assert result.is_unsat
    return writer.to_trace()


FIXTURES = [
    pytest.param(lambda: pigeonhole(5, 4), id="php54"),
    pytest.param(lambda: pigeonhole(6, 5), id="php65"),
    pytest.param(lambda: xor_chain(12), id="xor12"),
    pytest.param(lambda: random_3sat(16, 80, seed=3), id="r3sat"),
]


@pytest.mark.parametrize("make", FIXTURES)
def test_static_cone_equals_dynamic_df_core(make):
    """The analyzer's cone is exactly what the DF checker builds."""
    formula = make()
    trace = solved_trace(formula)
    graph = build_graph(trace)
    assert not graph.violations

    report = DepthFirstChecker(formula, trace).check()
    assert report.verified
    cone_learned = graph.cone() & set(trace.learned)
    assert report.clauses_built == len(cone_learned)
    # Every dynamically used learned clause is in the static cone, and the
    # original-clause core agrees exactly.
    assert report.learned_used <= cone_learned
    assert set(graph.original_core()) == report.original_core


@pytest.mark.parametrize("make", FIXTURES)
def test_prune_plan_partitions_the_learned_set(make):
    trace = solved_trace(make())
    plan = compute_prune_plan(trace)
    assert plan is not None
    assert plan.keep | plan.skip == set(trace.learned)
    assert not (plan.keep & plan.skip)
    assert plan.total_learned == trace.num_learned
    assert plan.num_original == trace.header.num_original_clauses
    assert len(plan.skip_ordinals) == len(plan.skip)
    # Ordinals are positions among learned records, in stream order.
    ordered = list(trace.learned)
    assert {ordered[o] for o in plan.skip_ordinals} == set(plan.skip)


def test_plan_digest_is_deterministic_and_content_bound():
    trace = solved_trace(pigeonhole(5, 4))
    plan_a = compute_prune_plan(trace)
    plan_b = compute_prune_plan(trace)
    assert plan_a.digest() == plan_b.digest()
    trace_b = solved_trace(pigeonhole(5, 4), seed=7)
    plan_c = compute_prune_plan(trace_b)
    if plan_c.skip != plan_a.skip:
        assert plan_c.digest() != plan_a.digest()


def test_cone_is_closed_under_sources():
    trace = solved_trace(pigeonhole(6, 5))
    graph = build_graph(trace)
    cone = graph.cone()
    for cid in cone:
        for source in trace.learned[cid].sources:
            if source > trace.header.num_original_clauses:
                assert source in cone


def test_needed_counts_are_breadth_first_exact():
    """Plan counts must match what a kept-only replay consumes: one use per
    source reference from a kept clause, per level-0 antecedent, and per
    final-conflict record citing a kept clause."""
    trace = solved_trace(pigeonhole(6, 5))
    plan = compute_prune_plan(trace)
    num_original = trace.header.num_original_clauses
    expected: dict[int, int] = {}
    for cid in plan.keep:
        for source in trace.learned[cid].sources:
            if source > num_original:
                expected[source] = expected.get(source, 0) + 1
    for entry in trace.level_zero:
        if entry.antecedent > num_original:
            expected[entry.antecedent] = expected.get(entry.antecedent, 0) + 1
    for cid in trace.final_conflicts:
        if cid > num_original and cid in plan.keep:
            expected[cid] = expected.get(cid, 0) + 1
    assert dict(plan.needed_counts) == expected


def _minimal_records(status="UNSAT"):
    return [
        TraceHeader(num_vars=3, num_original_clauses=3),
        LearnedClause(4, (1, 2)),
        LearnedClause(5, (4, 3)),
        LevelZeroAssignment(1, True, 4),
        LevelZeroAssignment(2, False, 5),
        FinalConflict(5),
        TraceResult(status),
    ]


def test_no_plan_for_sat_claim():
    assert compute_prune_plan(_minimal_records("SAT")) is None


def test_no_plan_without_final_conflict():
    records = _minimal_records()
    del records[5]
    assert compute_prune_plan(records) is None


def test_no_plan_for_structural_violations():
    dangling = _minimal_records()
    dangling[2] = LearnedClause(5, (4, 9, 3))  # 9 was never defined
    assert compute_prune_plan(dangling) is None

    forward = _minimal_records()
    forward[1] = LearnedClause(4, (1, 5))
    assert compute_prune_plan(forward) is None

    headless = _minimal_records()[1:]
    assert compute_prune_plan(headless) is None

    nonmono = _minimal_records()
    nonmono[1], nonmono[2] = (
        LearnedClause(5, (1, 2)),
        LearnedClause(4, (1, 3)),
    )
    assert compute_prune_plan(nonmono) is None


def test_no_plan_for_unparseable_file(tmp_path):
    path = tmp_path / "garbage.trace"
    path.write_text("this is not a trace\n")
    assert compute_prune_plan(str(path)) is None


def test_graph_from_file_matches_graph_from_memory(tmp_path):
    from repro.trace import open_trace_writer

    trace = solved_trace(pigeonhole(5, 4))
    for fmt, name in (("ascii", "t.trace"), ("binary", "t.btrace")):
        path = tmp_path / name
        writer = open_trace_writer(path, fmt)
        for record in trace.records():
            if isinstance(record, TraceHeader):
                writer.header(record.num_vars, record.num_original_clauses)
            elif isinstance(record, LearnedClause):
                writer.learned_clause(record.cid, record.sources)
            elif isinstance(record, LevelZeroAssignment):
                writer.level_zero(record.var, record.value, record.antecedent)
            elif isinstance(record, FinalConflict):
                writer.final_conflict(record.cid)
            elif isinstance(record, TraceResult):
                writer.result(record.status)
        writer.close()
        from_file = build_graph(str(path))
        assert from_file.cone() == build_graph(trace).cone()
        assert from_file.stats().to_dict() == build_graph(trace).stats().to_dict()


def test_stats_shape():
    trace = solved_trace(pigeonhole(5, 4))
    stats = build_graph(trace).stats()
    assert stats.num_learned == trace.num_learned
    assert stats.core_learned + stats.dead_learned == stats.num_learned
    assert 0.0 <= stats.dead_fraction <= 1.0
    assert stats.depth >= 1
    assert stats.width >= 1
    payload = stats.to_dict()
    assert payload["core_learned"] == stats.core_learned
    assert "depth" in payload and "width" in payload
    assert "core" in stats.summary()


def test_redundant_derivations_detects_identical_chains():
    records = _minimal_records()
    records.insert(3, LearnedClause(6, (1, 2)))  # same chain as cid 4
    graph = build_graph(records)
    assert graph.redundant_derivations() == [(6, 4)]


def test_find_cycle_on_clean_trace_is_none():
    graph = build_graph(_minimal_records())
    assert graph.find_cycle() is None


def test_find_cycle_detects_mutual_dependency():
    records = [
        TraceHeader(num_vars=3, num_original_clauses=3),
        LearnedClause(4, (1, 5)),  # forward: depends on 5
        LearnedClause(5, (4, 2)),  # and 5 depends on 4
        FinalConflict(5),
        TraceResult("UNSAT"),
    ]
    graph = build_graph(records)
    cycle = graph.find_cycle()
    assert cycle is not None
    assert set(cycle) == {4, 5}


def test_analysis_report_carries_graph_stats():
    trace = solved_trace(pigeonhole(5, 4))
    report = analyze_trace(trace.records(), graph=True)
    assert report.graph is not None
    assert report.graph["num_learned"] == trace.num_learned
    assert report.graph["status"] == "UNSAT"
    assert report.graph["prunable"] is True
    payload = report.to_json()
    assert payload["schema_version"] == 1
    assert payload["graph"]["core_learned"] == report.graph["core_learned"]


def test_default_analysis_has_no_graph_payload():
    trace = solved_trace(pigeonhole(5, 4))
    report = analyze_trace(trace.records())
    assert report.graph is None
