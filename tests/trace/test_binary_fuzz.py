"""Binary trace format robustness: arbitrary bytes never crash the reader
with anything but a TraceError."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import TraceError
from repro.trace.binary_format import MAGIC, iter_binary_records


def _consume(path):
    return list(iter_binary_records(path))


@settings(max_examples=80, deadline=None)
@given(payload=st.binary(max_size=200))
def test_random_payload_after_magic(payload, tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / "t.rtb"
    path.write_bytes(MAGIC + payload)
    try:
        _consume(path)
    except TraceError:
        pass  # the only acceptable failure mode


@settings(max_examples=40, deadline=None)
@given(payload=st.binary(min_size=1, max_size=50).filter(lambda b: not b.startswith(MAGIC)))
def test_random_bytes_without_magic(payload, tmp_path_factory):
    path = tmp_path_factory.mktemp("fuzz") / "t.rtb"
    path.write_bytes(payload)
    with pytest.raises(TraceError):
        _consume(path)


@settings(max_examples=40, deadline=None)
@given(cut=st.integers(min_value=4, max_value=60), data=st.data())
def test_truncated_valid_trace(cut, data, tmp_path_factory):
    """Any prefix of a real trace either parses (clean record boundary) or
    raises TraceError — never hangs or raises something else."""
    from repro.generators import pigeonhole
    from repro.solver import solve_formula
    from repro.trace import BinaryTraceWriter

    directory = tmp_path_factory.mktemp("fuzz")
    full = directory / "full.rtb"
    solve_formula(pigeonhole(4, 3), trace_writer=BinaryTraceWriter(full))
    blob = full.read_bytes()
    cut = min(cut, len(blob))
    truncated = directory / "cut.rtb"
    truncated.write_bytes(blob[:cut])
    try:
        _consume(truncated)
    except TraceError:
        pass
