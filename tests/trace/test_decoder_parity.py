"""Batched decoder, fused scan and raw iterator vs the legacy byte-at-a-time path.

The batched decoder is a pure performance change: for any trace file —
including ones whose records straddle chunk boundaries — it must produce
byte-identical record streams, the fused :func:`scan_binary_learned` must
agree with those records on every derived quantity, and the raw learned
iterator must carry the same payloads without the dataclass wrappers.
"""

import pytest

from repro.cnf import CnfFormula
from repro.checker import BreadthFirstChecker
from repro.solver import solve_formula
from repro.trace import InMemoryTraceWriter, TraceError
from repro.trace.binary_format import (
    DEFAULT_CHUNK_SIZE,
    _decode_batched,
    active_decoder_mode,
    decoder_mode,
    iter_binary_records,
    iter_binary_records_raw,
    iter_binary_records_unbatched,
    scan_binary_learned,
)
from repro.trace.io import open_trace_writer
from repro.trace.records import LearnedClause, LevelZeroAssignment

from tests.conftest import pigeonhole


@pytest.fixture(scope="module")
def sample_trace_path(tmp_path_factory):
    """A real solver trace, written in binary: headers, chains, level-zero
    assignments, final conflicts and a result record."""
    formula = pigeonhole(5, 4)
    inner = InMemoryTraceWriter()
    result = solve_formula(formula, trace_writer=inner)
    assert result.is_unsat
    trace = inner.to_trace()
    path = tmp_path_factory.mktemp("decoder") / "sample.rtb"
    with open_trace_writer(path, fmt="binary") as writer:
        writer.header(trace.header.num_vars, trace.header.num_original_clauses)
        for record in trace.learned.values():
            writer.learned_clause(record.cid, record.sources)
        for entry in trace.level_zero:
            writer.level_zero(entry.var, entry.value, entry.antecedent)
        for cid in trace.final_conflicts:
            writer.final_conflict(cid)
        writer.result(trace.status)
    return path


def test_batched_matches_unbatched_record_stream(sample_trace_path):
    batched = list(iter_binary_records(sample_trace_path))
    legacy = list(iter_binary_records_unbatched(sample_trace_path))
    assert batched == legacy
    assert any(isinstance(rec, LearnedClause) for rec in batched)


@pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64, DEFAULT_CHUNK_SIZE])
def test_batched_is_chunk_size_invariant(sample_trace_path, chunk_size):
    # Tiny chunks force every record shape to straddle a buffer boundary.
    sliced = list(_decode_batched(sample_trace_path, chunk_size=chunk_size))
    assert sliced == list(iter_binary_records_unbatched(sample_trace_path))


def test_decoder_mode_switches_and_restores(sample_trace_path):
    assert active_decoder_mode() == "batched"
    with decoder_mode("legacy"):
        assert active_decoder_mode() == "legacy"
        legacy = list(iter_binary_records(sample_trace_path))
    assert active_decoder_mode() == "batched"
    assert legacy == list(iter_binary_records(sample_trace_path))


def test_raw_iterator_matches_learned_records(sample_trace_path):
    records = list(iter_binary_records(sample_trace_path))
    raw = list(iter_binary_records_raw(sample_trace_path))
    assert len(raw) == len(records)
    for rec, raw_rec in zip(records, raw):
        if isinstance(rec, LearnedClause):
            assert type(raw_rec) is tuple
            cid, sources = raw_rec
            assert cid == rec.cid
            assert tuple(sources) == rec.sources
        else:
            assert raw_rec == rec


@pytest.mark.parametrize("chunk_size", [3, DEFAULT_CHUNK_SIZE])
def test_fused_scan_agrees_with_record_stream(sample_trace_path, chunk_size):
    headers, max_cid, num_learned, counts = scan_binary_learned(
        sample_trace_path, chunk_size=chunk_size
    )
    records = list(iter_binary_records_unbatched(sample_trace_path))
    learned = [rec for rec in records if isinstance(rec, LearnedClause)]

    assert headers == [
        (rec.num_vars, rec.num_original_clauses)
        for rec in records
        if hasattr(rec, "num_original_clauses")
    ]
    assert num_learned == len(learned)
    assert max_cid == max(rec.cid for rec in learned)

    expected: dict[int, int] = {}
    for rec in learned:
        for src in rec.sources:
            expected[src] = expected.get(src, 0) + 1
    for rec in records:
        if isinstance(rec, LevelZeroAssignment):
            expected[rec.antecedent] = expected.get(rec.antecedent, 0) + 1
    for rec in records:
        if hasattr(rec, "cid") and not isinstance(rec, LearnedClause):
            expected[rec.cid] = expected.get(rec.cid, 0) + 1
    assert counts == expected


def test_fused_scan_rejects_truncated_trace(sample_trace_path, tmp_path):
    blob = sample_trace_path.read_bytes()
    torn = tmp_path / "torn.rtb"
    # Cut inside the very first record (the header's varints) so the tear
    # cannot land on a record boundary.
    torn.write_bytes(blob[:5])
    with pytest.raises(TraceError):
        scan_binary_learned(torn)
    with pytest.raises(TraceError):
        scan_binary_learned(torn, chunk_size=2)


def test_bf_report_identical_across_decoder_paths(sample_trace_path):
    formula = pigeonhole(5, 4)
    from repro.trace.binary_format import read_binary_trace

    fast = BreadthFirstChecker(formula, sample_trace_path).check()
    as_object = BreadthFirstChecker(formula, read_binary_trace(sample_trace_path)).check()
    with decoder_mode("legacy"):
        legacy = BreadthFirstChecker(formula, sample_trace_path).check()

    for report in (as_object, legacy):
        assert report.verified == fast.verified
        assert report.clauses_built == fast.clauses_built
        assert report.total_learned == fast.total_learned
        assert report.resolutions == fast.resolutions
    assert fast.verified
