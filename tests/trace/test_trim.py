"""Trace trimming: smaller proofs that still check everywhere."""

import pytest

from repro.checker import BreadthFirstChecker, DepthFirstChecker, HybridChecker
from repro.cnf import CnfFormula
from repro.solver import SolverConfig, solve_formula
from repro.trace import InMemoryTraceWriter, load_trace
from repro.trace.trim import trim_trace, write_trimmed

from tests.conftest import pigeonhole, random_3sat


def _solve_traced(formula, **kwargs):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(**kwargs), trace_writer=writer)
    assert result.is_unsat
    return writer.to_trace()


@pytest.fixture(scope="module")
def r3sat():
    # A shifter-equivalence miter: about a third of its learned clauses
    # are dead weight for the final proof, so trimming has work to do.
    from repro.circuits import miter_to_cnf, shifter_equivalence_miter

    formula = miter_to_cnf(shifter_equivalence_miter(8))
    return formula, _solve_traced(formula)


def test_trim_drops_unneeded_clauses(r3sat):
    formula, trace = r3sat
    result = trim_trace(formula, trace)
    assert result.kept_learned + result.dropped_learned == trace.num_learned
    assert result.dropped_learned > 0  # this instance has dead learned clauses
    assert 0 < result.kept_fraction <= 1.0


def test_trimmed_trace_checks_with_every_strategy(r3sat):
    formula, trace = r3sat
    trimmed = trim_trace(formula, trace).trace
    assert DepthFirstChecker(formula, trimmed).check().verified
    assert BreadthFirstChecker(formula, trimmed).check().verified
    assert HybridChecker(formula, trimmed).check().verified


def test_trimming_is_idempotent(r3sat):
    formula, trace = r3sat
    once = trim_trace(formula, trace)
    twice = trim_trace(formula, once.trace)
    assert twice.dropped_learned == 0
    assert twice.kept_learned == once.kept_learned


def test_df_builds_everything_in_a_trimmed_trace(r3sat):
    formula, trace = r3sat
    trimmed = trim_trace(formula, trace).trace
    report = DepthFirstChecker(formula, trimmed).check()
    # Nearly all clauses kept are needed; allow the level-0-antecedent
    # closure margin (kept for the streaming checkers).
    assert report.clauses_built >= trimmed.num_learned * 0.9


def test_trim_preserves_core(r3sat):
    formula, trace = r3sat
    result = trim_trace(formula, trace)
    report = DepthFirstChecker(formula, result.trace).check()
    assert report.original_core <= result.original_core | report.original_core


def test_trim_rejects_invalid_trace():
    formula = CnfFormula(2, [[1, 2]])  # SAT: no valid UNSAT trace exists
    writer = InMemoryTraceWriter()
    solve_formula(formula, trace_writer=writer)
    with pytest.raises(Exception):
        trim_trace(formula, writer.to_trace())


@pytest.mark.parametrize("fmt", ["ascii", "binary"])
def test_write_trimmed_roundtrip(tmp_path, fmt, r3sat):
    formula, trace = r3sat
    path = tmp_path / f"trimmed.{fmt}"
    result = write_trimmed(formula, trace, path, fmt=fmt)
    again = load_trace(path)
    assert again.num_learned == result.kept_learned
    assert BreadthFirstChecker(formula, path).check().verified


def test_trimmed_file_is_smaller(tmp_path, r3sat):
    formula, trace = r3sat
    from repro.trace import AsciiTraceWriter

    full_path = tmp_path / "full.trace"
    writer = AsciiTraceWriter(full_path)
    writer.header(trace.header.num_vars, trace.header.num_original_clauses)
    for record in trace.learned.values():
        writer.learned_clause(record.cid, record.sources)
    for entry in trace.level_zero:
        writer.level_zero(entry.var, entry.value, entry.antecedent)
    for cid in trace.final_conflicts:
        writer.final_conflict(cid)
    writer.result(trace.status)
    writer.close()

    trimmed_path = tmp_path / "trimmed.trace"
    write_trimmed(formula, trace, trimmed_path)
    assert trimmed_path.stat().st_size < full_path.stat().st_size


def test_php_trim_keeps_most(r3sat):
    # Pigeonhole proofs need nearly everything (the Table 2/3 pattern).
    formula = pigeonhole(5, 4)
    trace = _solve_traced(formula)
    result = trim_trace(formula, trace)
    assert result.kept_fraction > 0.9
