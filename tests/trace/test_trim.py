"""Trace trimming: smaller proofs that still check everywhere."""

import pytest

from repro.checker import BreadthFirstChecker, DepthFirstChecker, HybridChecker
from repro.cnf import CnfFormula
from repro.solver import SolverConfig, solve_formula
from repro.trace import InMemoryTraceWriter, load_trace
from repro.trace.trim import trim_trace, write_trimmed

from tests.conftest import pigeonhole, random_3sat


def _solve_traced(formula, **kwargs):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(**kwargs), trace_writer=writer)
    assert result.is_unsat
    return writer.to_trace()


@pytest.fixture(scope="module")
def r3sat():
    # A shifter-equivalence miter: about a third of its learned clauses
    # are dead weight for the final proof, so trimming has work to do.
    from repro.circuits import miter_to_cnf, shifter_equivalence_miter

    formula = miter_to_cnf(shifter_equivalence_miter(8))
    return formula, _solve_traced(formula)


def test_trim_drops_unneeded_clauses(r3sat):
    formula, trace = r3sat
    result = trim_trace(formula, trace)
    assert result.kept_learned + result.dropped_learned == trace.num_learned
    assert result.dropped_learned > 0  # this instance has dead learned clauses
    assert 0 < result.kept_fraction <= 1.0


def test_trimmed_trace_checks_with_every_strategy(r3sat):
    formula, trace = r3sat
    trimmed = trim_trace(formula, trace).trace
    assert DepthFirstChecker(formula, trimmed).check().verified
    assert BreadthFirstChecker(formula, trimmed).check().verified
    assert HybridChecker(formula, trimmed).check().verified


def test_trimming_is_idempotent(r3sat):
    formula, trace = r3sat
    once = trim_trace(formula, trace)
    twice = trim_trace(formula, once.trace)
    assert twice.dropped_learned == 0
    assert twice.kept_learned == once.kept_learned


def test_df_builds_everything_in_a_trimmed_trace(r3sat):
    formula, trace = r3sat
    trimmed = trim_trace(formula, trace).trace
    report = DepthFirstChecker(formula, trimmed).check()
    # Nearly all clauses kept are needed; allow the level-0-antecedent
    # closure margin (kept for the streaming checkers).
    assert report.clauses_built >= trimmed.num_learned * 0.9


def test_trim_preserves_core(r3sat):
    formula, trace = r3sat
    result = trim_trace(formula, trace)
    report = DepthFirstChecker(formula, result.trace).check()
    assert report.original_core <= result.original_core | report.original_core


def test_trim_rejects_invalid_trace():
    formula = CnfFormula(2, [[1, 2]])  # SAT: no valid UNSAT trace exists
    writer = InMemoryTraceWriter()
    solve_formula(formula, trace_writer=writer)
    with pytest.raises(Exception):
        trim_trace(formula, writer.to_trace())


@pytest.mark.parametrize("fmt", ["ascii", "binary"])
def test_write_trimmed_roundtrip(tmp_path, fmt, r3sat):
    formula, trace = r3sat
    path = tmp_path / f"trimmed.{fmt}"
    result = write_trimmed(formula, trace, path, fmt=fmt)
    again = load_trace(path)
    assert again.num_learned == result.kept_learned
    assert BreadthFirstChecker(formula, path).check().verified


def test_trimmed_file_is_smaller(tmp_path, r3sat):
    formula, trace = r3sat
    from repro.trace import AsciiTraceWriter

    full_path = tmp_path / "full.trace"
    writer = AsciiTraceWriter(full_path)
    writer.header(trace.header.num_vars, trace.header.num_original_clauses)
    for record in trace.learned.values():
        writer.learned_clause(record.cid, record.sources)
    for entry in trace.level_zero:
        writer.level_zero(entry.var, entry.value, entry.antecedent)
    for cid in trace.final_conflicts:
        writer.final_conflict(cid)
    writer.result(trace.status)
    writer.close()

    trimmed_path = tmp_path / "trimmed.trace"
    write_trimmed(formula, trace, trimmed_path)
    assert trimmed_path.stat().st_size < full_path.stat().st_size


def test_php_trim_keeps_most(r3sat):
    # Pigeonhole proofs need nearly everything (the Table 2/3 pattern).
    formula = pigeonhole(5, 4)
    trace = _solve_traced(formula)
    result = trim_trace(formula, trace)
    assert result.kept_fraction > 0.9


# -- the static-analyzer rewiring ---------------------------------------------


@pytest.fixture(scope="module")
def deletion_heavy():
    """An aggressive-deletion solve: dead lemmas AND deletion records."""
    formula = pigeonhole(6, 5)
    trace = _solve_traced(formula, seed=1, max_learned_factor=0.05, min_learned_cap=10)
    assert trace.deletions  # the config must actually trigger deletions
    return formula, trace


def test_trim_preserves_header_status_and_trail(r3sat):
    formula, trace = r3sat
    trimmed = trim_trace(formula, trace).trace
    assert trimmed.header == trace.header
    assert trimmed.status == trace.status
    assert trimmed.level_zero == trace.level_zero
    assert trimmed.final_conflicts == trace.final_conflicts[:1]


def test_trim_keeps_exactly_the_prune_plan(r3sat):
    from repro.analysis import compute_prune_plan

    formula, trace = r3sat
    plan = compute_prune_plan(trace)
    result = trim_trace(formula, trace)
    assert set(result.trace.learned) == set(plan.keep)
    assert result.dropped_learned == len(plan.skip)


def test_trim_keeps_deletions_of_kept_clauses_only(deletion_heavy):
    formula, trace = deletion_heavy
    result = trim_trace(formula, trace)
    trimmed = result.trace
    total = sum(len(cids) for cids in trace.deletions.values())
    kept = sum(len(cids) for cids in trimmed.deletions.values())
    assert kept == result.kept_deletions
    assert result.kept_deletions + result.dropped_deletions == total
    assert result.dropped_deletions > 0  # dead clauses had deletions
    for cids in trimmed.deletions.values():
        for cid in cids:
            assert cid in trimmed.learned


def test_trim_reanchors_deletions_to_kept_clauses(deletion_heavy):
    formula, trace = deletion_heavy
    trimmed = trim_trace(formula, trace).trace
    # This fixture drops at least one anchor clause, forcing re-anchoring.
    assert any(
        anchor and anchor not in trimmed.learned for anchor in trace.deletions
    )
    for anchor in trimmed.deletions:
        assert anchor == 0 or anchor in trimmed.learned
    # A re-keyed deletion never moves *later* than where it was recorded.
    for anchor, cids in trimmed.deletions.items():
        for cid in cids:
            original_anchor = next(
                a for a, group in trace.deletions.items() if cid in group
            )
            assert anchor <= original_anchor


def test_verify_mode_accepts_a_valid_trace(r3sat):
    formula, trace = r3sat
    plain = trim_trace(formula, trace)
    verified = trim_trace(formula, trace, verify=True)
    assert set(verified.trace.learned) == set(plain.trace.learned)
    assert verified.original_core  # the DF checker's dynamic core


def test_verify_mode_rejects_a_semantically_broken_trace():
    """Structurally clean but wrong resolution: only verify=True catches it."""
    from repro.checker.errors import CheckFailure
    from repro.trace.records import LearnedClause

    formula = pigeonhole(5, 4)
    trace = _solve_traced(formula)
    plain = trim_trace(formula, trace)
    victim = next(
        cid
        for cid in sorted(plain.trace.learned)
        if len(trace.learned[cid].sources) > 2
    )
    broken = trace.learned[victim]
    trace.learned[victim] = LearnedClause(
        victim, broken.sources[:1] + broken.sources[2:]
    )
    trim_trace(formula, trace)  # static-only trim cannot see the breakage
    with pytest.raises(CheckFailure):
        trim_trace(formula, trace, verify=True)


@pytest.mark.parametrize("fmt", ["ascii", "binary"])
def test_write_trimmed_preserves_deletions(tmp_path, fmt, deletion_heavy):
    formula, trace = deletion_heavy
    path = tmp_path / f"trimmed.{fmt}"
    result = write_trimmed(formula, trace, path, fmt=fmt)
    again = load_trace(path)
    assert sum(len(cids) for cids in again.deletions.values()) == result.kept_deletions
    assert again.learned == result.trace.learned


@pytest.mark.parametrize("use_kernel", [True, False], ids=["kernel", "oracle"])
def test_trimmed_binary_rechecks_under_every_engine(tmp_path, use_kernel, deletion_heavy):
    from repro.checker import ParallelWindowedChecker

    formula, trace = deletion_heavy
    path = tmp_path / "trimmed.btrace"
    write_trimmed(formula, trace, path, fmt="binary")
    trimmed = load_trace(path)
    reports = [
        DepthFirstChecker(formula, trimmed, use_kernel=use_kernel).check(),
        BreadthFirstChecker(formula, path, use_kernel=use_kernel).check(),
        HybridChecker(formula, path, use_kernel=use_kernel).check(),
        ParallelWindowedChecker(
            formula, path, num_workers=2, use_kernel=use_kernel
        ).check(),
    ]
    for report in reports:
        assert report.verified, (report.method, report.failure)
