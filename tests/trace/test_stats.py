"""Trace statistics."""

from repro.solver import SolverConfig, Solver
from repro.trace import AsciiTraceWriter, BinaryTraceWriter, analyze_trace

from tests.conftest import pigeonhole


def _write_trace(path, writer_cls):
    formula = pigeonhole(5, 4)
    result = Solver(formula, SolverConfig(), trace_writer=writer_cls(path)).solve()
    assert result.is_unsat
    return formula, result


def test_stats_match_solver_counters(tmp_path):
    path = tmp_path / "t.trace"
    formula, result = _write_trace(path, AsciiTraceWriter)
    stats = analyze_trace(path)
    assert stats.num_original_clauses == formula.num_clauses
    assert stats.num_learned == result.stats.learned_clauses
    assert stats.status == "UNSAT"
    assert stats.final_conflicts == 1
    assert stats.level_zero_entries > 0


def test_stats_identical_for_both_formats(tmp_path):
    ascii_path = tmp_path / "t.trace"
    binary_path = tmp_path / "t.rtb"
    _write_trace(ascii_path, AsciiTraceWriter)
    _write_trace(binary_path, BinaryTraceWriter)
    a = analyze_trace(ascii_path)
    b = analyze_trace(binary_path)
    assert a.num_learned == b.num_learned
    assert a.total_sources == b.total_sources
    assert a.chain_length_histogram == b.chain_length_histogram


def test_derived_quantities(tmp_path):
    path = tmp_path / "t.trace"
    _write_trace(path, AsciiTraceWriter)
    stats = analyze_trace(path)
    assert stats.mean_sources >= 2.0  # learned clauses have >= 2 sources
    assert stats.max_sources >= stats.mean_sources
    assert stats.total_resolutions == stats.total_sources - stats.num_learned
    assert sum(stats.chain_length_histogram.values()) == stats.num_learned


def test_summary_renders(tmp_path):
    path = tmp_path / "t.trace"
    _write_trace(path, AsciiTraceWriter)
    text = analyze_trace(path).summary()
    assert "learned clauses" in text
    assert "chain length histogram" in text


def test_empty_stats_summary():
    from repro.trace.stats import TraceStatistics

    stats = TraceStatistics()
    assert stats.mean_sources == 0.0
    assert stats.total_resolutions == 0
    assert "UNKNOWN" in stats.summary()
