"""Round-trip and validation tests for the trace formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace import (
    AsciiTraceWriter,
    BinaryTraceWriter,
    FinalConflict,
    InMemoryTraceWriter,
    LearnedClause,
    LevelZeroAssignment,
    TraceError,
    TraceHeader,
    TraceResult,
    iter_trace_records,
    load_trace,
    open_trace_writer,
    read_ascii_trace,
    read_binary_trace,
)
from repro.trace.binary_format import decode_varint, encode_varint
from repro.trace.records import assemble_trace


def _write_sample(writer):
    writer.header(4, 3)
    writer.learned_clause(4, [3, 1])
    writer.learned_clause(5, [4, 2, 1])
    writer.clause_deletion(4)
    writer.level_zero(1, True, 4)
    writer.level_zero(2, False, 5)
    writer.final_conflict(3)
    writer.result("UNSAT")
    writer.close()


def _check_sample(trace):
    assert trace.header == TraceHeader(4, 3)
    assert trace.learned[4].sources == (3, 1)
    assert trace.learned[5].sources == (4, 2, 1)
    assert trace.deletions == {5: [4]}  # anchored to the last learned cid
    assert trace.level_zero == [
        LevelZeroAssignment(1, True, 4),
        LevelZeroAssignment(2, False, 5),
    ]
    assert trace.final_conflicts == [3]
    assert trace.status == "UNSAT"


def test_ascii_roundtrip(tmp_path):
    path = tmp_path / "t.trace"
    _write_sample(AsciiTraceWriter(path))
    _check_sample(read_ascii_trace(path))


def test_binary_roundtrip(tmp_path):
    path = tmp_path / "t.rtb"
    _write_sample(BinaryTraceWriter(path))
    _check_sample(read_binary_trace(path))


def test_autodetect_both_formats(tmp_path):
    ascii_path = tmp_path / "a.trace"
    binary_path = tmp_path / "b.rtb"
    _write_sample(AsciiTraceWriter(ascii_path))
    _write_sample(BinaryTraceWriter(binary_path))
    _check_sample(load_trace(ascii_path))
    _check_sample(load_trace(binary_path))


def test_in_memory_writer():
    writer = InMemoryTraceWriter()
    _write_sample(writer)
    assert writer.closed
    _check_sample(writer.to_trace())


def test_open_trace_writer_dispatch(tmp_path):
    assert isinstance(open_trace_writer(tmp_path / "x", "ascii"), AsciiTraceWriter)
    assert isinstance(open_trace_writer(tmp_path / "y", "binary"), BinaryTraceWriter)
    with pytest.raises(ValueError):
        open_trace_writer(tmp_path / "z", "json")


def test_binary_is_smaller_than_ascii(tmp_path):
    ascii_path = tmp_path / "a.trace"
    binary_path = tmp_path / "b.rtb"
    with AsciiTraceWriter(ascii_path) as aw, BinaryTraceWriter(binary_path) as bw:
        for writer in (aw, bw):
            writer.header(1000, 5000)
            for cid in range(5001, 6001):
                writer.learned_clause(cid, [cid - 1, cid - 2, cid - 3, 17])
            writer.final_conflict(42)
            writer.result("UNSAT")
    ascii_size = ascii_path.stat().st_size
    binary_size = binary_path.stat().st_size
    assert binary_size * 2 < ascii_size  # the paper's "2-3x compaction"


def test_ascii_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("T 1 1\nXYZ 3\n")
    with pytest.raises(TraceError):
        list(iter_trace_records(path))


def test_ascii_rejects_truncated_record(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("T 1\n")
    with pytest.raises(TraceError):
        list(iter_trace_records(path))


def test_binary_rejects_bad_magic(tmp_path):
    path = tmp_path / "bad.rtb"
    path.write_bytes(b"NOPE")
    with pytest.raises(TraceError):
        list(read_binary_trace(path).records())


def test_binary_rejects_truncation(tmp_path):
    path = tmp_path / "trunc.rtb"
    good = tmp_path / "good.rtb"
    _write_sample(BinaryTraceWriter(good))
    data = good.read_bytes()
    path.write_bytes(data[:6])  # header record cut mid-payload
    with pytest.raises(TraceError):
        list(read_binary_trace(path).records())


def test_binary_rejects_forward_source_reference(tmp_path):
    writer = BinaryTraceWriter(tmp_path / "f.rtb")
    writer.header(1, 1)
    with pytest.raises(TraceError):
        writer.learned_clause(5, [5])
    writer.close()


def test_assemble_rejects_duplicate_learned_id():
    records = [TraceHeader(2, 2), LearnedClause(3, (1, 2)), LearnedClause(3, (2, 1))]
    with pytest.raises(TraceError):
        assemble_trace(iter(records))


def test_assemble_rejects_learned_id_colliding_with_original():
    records = [TraceHeader(2, 5), LearnedClause(3, (1, 2))]
    with pytest.raises(TraceError):
        assemble_trace(iter(records))


def test_assemble_rejects_record_before_header():
    with pytest.raises(TraceError):
        assemble_trace(iter([LearnedClause(3, (1, 2))]))


def test_assemble_rejects_empty():
    with pytest.raises(TraceError):
        assemble_trace(iter([]))


def test_learned_clause_requires_sources():
    with pytest.raises(TraceError):
        LearnedClause(10, ())


@pytest.mark.parametrize("fmt", ["ascii", "binary"])
def test_deletion_positions_roundtrip(tmp_path, fmt):
    """Deletions keep their stream position: before any learned record
    (anchor 0), mid-stream, and several under one anchor."""
    path = tmp_path / f"d.{fmt}"
    writer = open_trace_writer(path, fmt)
    writer.header(4, 3)
    writer.clause_deletion(2)  # deleting an original clause, pre-learning
    writer.learned_clause(4, [3, 1])
    writer.clause_deletion(4)
    writer.learned_clause(5, [4, 2, 1])
    writer.clause_deletion(4)
    writer.clause_deletion(5)
    writer.final_conflict(5)
    writer.result("UNSAT")
    writer.close()
    trace = load_trace(path)
    assert trace.deletions == {0: [2], 4: [4], 5: [4, 5]}
    # The record stream replays deletions in their original interleaving.
    from repro.trace.records import ClauseDeletion

    kinds = [
        record.cid for record in trace.records() if isinstance(record, ClauseDeletion)
    ]
    assert kinds == [2, 4, 4, 5]


def test_trace_records_replay():
    writer = InMemoryTraceWriter()
    _write_sample(writer)
    trace = writer.to_trace()
    replayed = assemble_trace(trace.records())
    _check_sample(replayed)


def test_antecedent_of():
    writer = InMemoryTraceWriter()
    _write_sample(writer)
    trace = writer.to_trace()
    assert trace.antecedent_of(1) == 4
    assert trace.antecedent_of(2) == 5
    assert trace.antecedent_of(99) is None


@given(st.integers(min_value=0, max_value=2**60))
def test_varint_roundtrip(value):
    encoded = encode_varint(value)

    class OneShot:
        def __init__(self, data):
            self.data = data
            self.pos = 0

        def next_byte(self):
            byte = self.data[self.pos]
            self.pos += 1
            return byte

    assert decode_varint(OneShot(encoded)) == value


def test_varint_rejects_negative():
    with pytest.raises(ValueError):
        encode_varint(-1)


learned_ids = st.integers(min_value=10, max_value=10_000)


@given(
    st.lists(
        st.tuples(learned_ids, st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6)),
        min_size=1,
        max_size=30,
        unique_by=lambda t: t[0],
    )
)
def test_binary_roundtrip_property(tmp_path_factory_entries):
    import tempfile
    import os

    entries = tmp_path_factory_entries
    fd, path = tempfile.mkstemp(suffix=".rtb")
    os.close(fd)
    try:
        writer = BinaryTraceWriter(path)
        writer.header(100, 9)
        for cid, sources in entries:
            writer.learned_clause(cid, sources)
        writer.result("UNSAT")
        writer.close()
        trace = read_binary_trace(path)
        assert trace.num_learned == len(entries)
        for cid, sources in entries:
            assert trace.learned[cid].sources == tuple(sources)
    finally:
        os.unlink(path)
