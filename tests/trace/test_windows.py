"""Window planning edge cases and the single-pass grouped iteration.

``iter_window_records`` decodes the whole trace once *per call*; driving a
multi-window plan through it therefore re-decoded the trace once per
window (quadratic in the window count). ``iter_windowed_records`` is the
single-pass replacement; the regression tests here prove the pass count
by feeding sources that physically cannot be read twice.
"""

import pytest

from repro.trace.records import (
    ClauseDeletion,
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    TraceHeader,
    TraceResult,
)
from repro.trace.windows import (
    ShiftingWindow,
    WindowPlan,
    iter_window_records,
    iter_windowed_records,
    plan_windows,
)

NUM_ORIGINAL = 4


def chain_records(num_learned, deletions=()):
    """Header + a learned chain (+ optional deletions interleaved by cid)."""
    records = [TraceHeader(num_vars=6, num_original_clauses=NUM_ORIGINAL)]
    for offset in range(num_learned):
        cid = NUM_ORIGINAL + 1 + offset
        records.append(LearnedClause(cid, (1, 2)))
        if cid in deletions:
            records.append(ClauseDeletion(cid))
    records.append(LevelZeroAssignment(var=1, value=True, antecedent=1))
    records.append(FinalConflict(NUM_ORIGINAL))
    records.append(TraceResult("UNSAT"))
    return records


def learned_cids(num_learned):
    return [NUM_ORIGINAL + 1 + offset for offset in range(num_learned)]


# -- plan_windows edge cases ---------------------------------------------------


def test_empty_trace_yields_empty_plan():
    plan = plan_windows([], NUM_ORIGINAL, window_size=8)
    assert plan.windows == ()
    assert len(plan) == 0
    assert list(iter_windowed_records(chain_records(0), plan)) == []


def test_single_record_with_oversized_window():
    # One learned record, window far larger than the trace: a single
    # window that still owns the whole ID gap down to the originals.
    plan = plan_windows([NUM_ORIGINAL + 1], NUM_ORIGINAL, window_size=1000)
    assert len(plan) == 1
    window = plan.windows[0]
    assert (window.lo, window.hi, window.num_records) == (
        NUM_ORIGINAL + 1,
        NUM_ORIGINAL + 2,
        1,
    )
    assert plan.window_of(NUM_ORIGINAL + 1) is window


def test_window_larger_than_trace_collapses_to_one_window():
    cids = learned_cids(7)
    for kwargs in ({"window_size": 100}, {"num_windows": 1}, {}):
        plan = plan_windows(cids, NUM_ORIGINAL, **kwargs)
        assert len(plan) == 1
        assert plan.windows[0].num_records == 7
        assert [plan.window_of(cid).index for cid in cids] == [0] * 7


def test_sparse_ids_partition_without_gaps():
    # Sparse learned IDs: every ID (even absent ones) must belong to
    # exactly one window — windows tile [num_original+1, max_cid+1).
    cids = [6, 9, 17, 18, 40]
    plan = plan_windows(cids, NUM_ORIGINAL, window_size=2)
    assert plan.windows[0].lo == NUM_ORIGINAL + 1
    for left, right in zip(plan.windows, plan.windows[1:]):
        assert left.hi == right.lo
    assert sum(w.num_records for w in plan.windows) == len(cids)


def test_plan_windows_rejects_bad_arguments():
    with pytest.raises(ValueError):
        plan_windows([5], NUM_ORIGINAL, window_size=2, num_windows=2)
    with pytest.raises(ValueError):
        plan_windows([5], NUM_ORIGINAL, window_size=0)
    with pytest.raises(ValueError):
        plan_windows([5], NUM_ORIGINAL, window_size=-3)


def test_window_of_rejects_originals_and_out_of_range():
    plan = plan_windows(learned_cids(4), NUM_ORIGINAL, window_size=2)
    with pytest.raises(ValueError):
        plan.window_of(NUM_ORIGINAL)  # an original clause
    with pytest.raises(ValueError):
        plan.window_of(NUM_ORIGINAL + 100)  # past the last window


def test_deletions_at_window_boundaries_do_not_shift_windows():
    # Deletion records are advisory: a deletion of the clause that closes
    # a window (or opens the next) must not change grouping or counts.
    num_learned = 9
    cids = learned_cids(num_learned)
    plan = plan_windows(cids, NUM_ORIGINAL, window_size=3)
    boundary_cids = {plan.windows[0].hi - 1, plan.windows[1].lo, plan.windows[1].hi - 1}
    with_deletions = chain_records(num_learned, deletions=boundary_cids)
    plain = chain_records(num_learned)

    grouped_plain = [
        (w.index, [r.cid for r in batch])
        for w, batch in iter_windowed_records(plain, plan)
    ]
    grouped_deleted = [
        (w.index, [r.cid for r in batch])
        for w, batch in iter_windowed_records(with_deletions, plan)
    ]
    assert grouped_plain == grouped_deleted
    assert [len(batch) for _, batch in grouped_plain] == [3, 3, 3]


# -- single-pass iteration ----------------------------------------------------


def test_grouped_iteration_matches_per_window_scans():
    records = chain_records(10)
    plan = plan_windows(learned_cids(10), NUM_ORIGINAL, window_size=4)
    grouped = {
        w.index: [r.cid for r in batch]
        for w, batch in iter_windowed_records(records, plan)
    }
    per_window = {
        w.index: [r.cid for r in iter_window_records(records, w.lo, w.hi)]
        for w in plan.windows
    }
    assert grouped == per_window
    assert set(grouped) == {0, 1, 2}


def test_trailing_windows_yield_empty_batches():
    # A plan built for a longer trace: the stream runs dry before the
    # last windows, which must still be yielded (empty), in order.
    plan = plan_windows(learned_cids(9), NUM_ORIGINAL, window_size=3)
    short = chain_records(4)
    yielded = list(iter_windowed_records(short, plan))
    assert [w.index for w, _ in yielded] == [0, 1, 2]
    assert [[r.cid for r in batch] for _, batch in yielded] == [
        [5, 6, 7],
        [8],
        [],
    ]


def test_one_shot_source_is_fully_consumed_in_one_pass():
    # A generator can only be iterated once; completing the whole plan
    # from it proves there is no second decode pass.
    plan = plan_windows(learned_cids(12), NUM_ORIGINAL, window_size=3)
    one_shot = iter(chain_records(12))
    batches = list(iter_windowed_records(one_shot, plan))
    assert len(batches) == 4
    assert sum(len(batch) for _, batch in batches) == 12


def test_per_window_scans_restart_decoding_but_grouped_does_not():
    """The quadratic-regression pin: count actual decode passes.

    Wrapping the record list in a pass-counting iterable shows
    ``iter_window_records`` re-reads the trace once per window while
    ``iter_windowed_records`` reads it exactly once for the same plan.
    """

    class CountingSource:
        def __init__(self, records):
            self.records = records
            self.passes = 0

        def __iter__(self):
            self.passes += 1
            return iter(self.records)

    plan = plan_windows(learned_cids(20), NUM_ORIGINAL, window_size=4)
    assert len(plan) == 5

    quadratic = CountingSource(chain_records(20))
    for window in plan.windows:
        list(iter_window_records(quadratic, window.lo, window.hi))
    assert quadratic.passes == len(plan)

    single = CountingSource(chain_records(20))
    list(iter_windowed_records(single, plan))
    assert single.passes == 1


def test_grouped_iteration_stops_reading_after_last_window():
    # Once every window is served, the source must not be drained further
    # (the tail of a huge trace is never decoded a second time).
    plan = plan_windows(learned_cids(4), NUM_ORIGINAL, window_size=2)
    consumed = []

    def source():
        for record in chain_records(8):
            consumed.append(record)
            yield record

    list(iter_windowed_records(source(), plan))
    learned_seen = [r.cid for r in consumed if isinstance(r, LearnedClause)]
    # Reads up to the first learned record past the final window, no more.
    assert learned_seen == learned_cids(5)


# -- the shifting-window cursor ------------------------------------------------


def test_shifting_window_accumulates_and_caps_detail():
    window = ShiftingWindow(window_records=16, max_detail=3)
    for position in range(5):
        window.advance(16, built=position)
    assert window.index == 5
    assert window.total_records == 80
    assert [entry["window"] for entry in window.entries] == [0, 1, 2]
    assert window.entries[0] == {"window": 0, "records": 16, "built": 0}


def test_shifting_window_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        ShiftingWindow(window_records=0)
    assert ShiftingWindow().window_records == ShiftingWindow.DEFAULT_RECORDS


def test_plan_survives_record_stream_with_interleaved_noise():
    # Level-zero assignments and deletions between learned records are
    # skipped by both consumption modes without desynchronizing windows.
    records = [TraceHeader(num_vars=6, num_original_clauses=NUM_ORIGINAL)]
    for offset in range(6):
        cid = NUM_ORIGINAL + 1 + offset
        records.append(LevelZeroAssignment(var=1, value=True, antecedent=1))
        records.append(LearnedClause(cid, (1, 2)))
        records.append(ClauseDeletion(cid))
    plan = plan_windows(learned_cids(6), NUM_ORIGINAL, num_windows=3)
    batches = list(iter_windowed_records(records, plan))
    assert [len(batch) for _, batch in batches] == [2, 2, 2]
    assert isinstance(plan, WindowPlan)
