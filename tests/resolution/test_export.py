"""Proof-graph exports: networkx and DOT."""

import networkx as nx
import pytest

from repro.cnf import CnfFormula
from repro.resolution import ResolutionGraph, to_dot, to_networkx
from repro.resolution.graph import EMPTY_CLAUSE_ID
from repro.solver import solve_formula
from repro.trace import InMemoryTraceWriter

from tests.conftest import pigeonhole


def _graph(formula):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, trace_writer=writer)
    assert result.is_unsat
    return ResolutionGraph.from_trace(formula, writer.to_trace())


@pytest.fixture(scope="module")
def php_graph():
    return _graph(pigeonhole(4, 3))


def test_networkx_is_a_dag(php_graph):
    digraph = to_networkx(php_graph)
    assert nx.is_directed_acyclic_graph(digraph)


def test_networkx_node_attributes(php_graph):
    digraph = to_networkx(php_graph)
    assert digraph.nodes[EMPTY_CLAUSE_ID]["kind"] == "empty"
    assert digraph.nodes[EMPTY_CLAUSE_ID]["num_literals"] == 0
    kinds = {data["kind"] for _, data in digraph.nodes(data=True)}
    assert kinds == {"empty", "original", "learned"}


def test_networkx_leaves_have_no_in_edges(php_graph):
    digraph = to_networkx(php_graph)
    for cid in php_graph.leaves():
        assert digraph.in_degree(cid) == 0


def test_networkx_everything_reaches_the_empty_clause(php_graph):
    digraph = to_networkx(php_graph)
    for node in digraph.nodes:
        if node != EMPTY_CLAUSE_ID:
            assert nx.has_path(digraph, node, EMPTY_CLAUSE_ID)


def test_edge_order_attribute(php_graph):
    digraph = to_networkx(php_graph)
    root_orders = sorted(
        data["order"] for _, _, data in digraph.in_edges(EMPTY_CLAUSE_ID, data=True)
    )
    assert root_orders == list(range(len(root_orders)))


def test_dot_output_well_formed():
    graph = _graph(CnfFormula(1, [[1], [-1]]))
    dot = to_dot(graph)
    assert dot.startswith("digraph proof {")
    assert dot.rstrip().endswith("}")
    assert "doublecircle" in dot  # the empty clause
    assert "->" in dot


def test_dot_size_guard(php_graph):
    with pytest.raises(ValueError):
        to_dot(php_graph, max_nodes=2)
