"""Resolution graphs and the Davis-Putnam baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf import CnfFormula
from repro.resolution import ResolutionGraph, davis_putnam
from repro.resolution.graph import EMPTY_CLAUSE_ID
from repro.solver import SolverConfig, solve_formula
from repro.solver.reference import reference_is_satisfiable
from repro.trace import InMemoryTraceWriter

from tests.conftest import pigeonhole, random_3sat


def _proof_graph(formula):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(), trace_writer=writer)
    assert result.is_unsat
    return ResolutionGraph.from_trace(formula, writer.to_trace())


class TestResolutionGraph:
    def test_root_is_empty_clause(self):
        graph = _proof_graph(pigeonhole(4, 3))
        assert graph.literals[EMPTY_CLAUSE_ID] == frozenset()
        assert graph.parents[EMPTY_CLAUSE_ID]

    def test_leaves_are_original_clauses(self):
        formula = pigeonhole(4, 3)
        graph = _proof_graph(formula)
        leaves = graph.leaves()
        assert leaves
        assert all(1 <= cid <= formula.num_clauses for cid in leaves)

    def test_acyclic(self):
        graph = _proof_graph(pigeonhole(5, 4))
        assert graph.check_acyclic()

    def test_stats_consistency(self):
        graph = _proof_graph(pigeonhole(5, 4))
        stats = graph.stats()
        assert stats.num_leaves == stats.core_clauses == len(graph.leaves())
        assert stats.num_nodes == stats.num_leaves + stats.num_internal + 1
        assert stats.depth >= 1
        assert stats.total_resolutions >= stats.num_internal
        assert 0 < stats.core_variables <= formula_vars(graph)

    def test_every_internal_node_resolves_from_parents(self):
        from repro.checker.resolution import resolve_chain

        graph = _proof_graph(pigeonhole(4, 3))
        for cid, sources in graph.parents.items():
            if cid == EMPTY_CLAUSE_ID:
                continue
            chain = [(s, graph.literals[s]) for s in sources]
            assert resolve_chain(chain) == graph.literals[cid]

    def test_from_trace_rejects_sat_trace(self):
        formula = CnfFormula(2, [[1, 2]])
        writer = InMemoryTraceWriter()
        solve_formula(formula, trace_writer=writer)
        with pytest.raises(Exception):
            ResolutionGraph.from_trace(formula, writer.to_trace())


def formula_vars(graph):
    return len({abs(lit) for lits in graph.literals.values() for lit in lits})


class TestDavisPutnam:
    def test_unsat_units(self):
        result = davis_putnam(CnfFormula(1, [[1], [-1]]))
        assert result.status == "UNSAT"

    def test_sat_simple(self):
        result = davis_putnam(CnfFormula(2, [[1, 2], [-1, 2]]))
        assert result.status == "SAT"

    def test_empty_formula_sat(self):
        assert davis_putnam(CnfFormula(0)).status == "SAT"

    def test_input_empty_clause_unsat(self):
        formula = CnfFormula(1, [[1]])
        formula.add_clause([])
        assert davis_putnam(formula).status == "UNSAT"

    def test_tautologies_ignored(self):
        result = davis_putnam(CnfFormula(2, [[1, -1], [2, -2]]))
        assert result.status == "SAT"

    def test_pigeonhole_unsat(self):
        assert davis_putnam(pigeonhole(4, 3)).status == "UNSAT"

    def test_clause_limit_gives_unknown(self):
        result = davis_putnam(pigeonhole(7, 6), clause_limit=30)
        assert result.status == "UNKNOWN"
        assert result.peak_clauses > 30

    def test_space_statistics_populated(self):
        result = davis_putnam(pigeonhole(5, 4))
        assert result.status == "UNSAT"
        assert result.peak_clauses >= pigeonhole(5, 4).num_clauses
        assert result.total_resolvents > 0

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_reference_on_random(self, seed):
        formula = random_3sat(10, 42, seed=seed)
        expected = "SAT" if reference_is_satisfiable(formula) else "UNSAT"
        assert davis_putnam(formula).status == expected

    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), num_vars=st.integers(min_value=1, max_value=8))
    def test_agrees_with_reference_property(self, data, num_vars):
        lit = st.integers(min_value=-num_vars, max_value=num_vars).filter(lambda x: x != 0)
        clause_lists = data.draw(
            st.lists(st.lists(lit, min_size=1, max_size=3), min_size=1, max_size=20)
        )
        formula = CnfFormula(num_vars, clause_lists)
        expected = "SAT" if reference_is_satisfiable(formula) else "UNSAT"
        assert davis_putnam(formula).status == expected
