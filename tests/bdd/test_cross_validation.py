"""The BDD engine as an independent referee for the SAT-based flows."""

import itertools

import pytest

from repro.apps import BoundedModelChecker, EquivalenceChecker, InterpolationModelChecker
from repro.bdd import BddManager, bdd_equivalent, circuit_outputs_to_bdds, symbolic_reachability
from repro.bmc import counter_system, lfsr_system, token_ring_system
from repro.circuits import (
    carry_select_adder,
    random_circuit,
    rewritten_copy,
    ripple_carry_adder,
)


class TestCircuitCompilation:
    @pytest.mark.parametrize("seed", range(4))
    def test_bdd_matches_simulation(self, seed):
        circuit = random_circuit(6, 25, 3, seed=seed)
        manager = BddManager()
        bdds = circuit_outputs_to_bdds(circuit, manager)
        for bits in itertools.product([False, True], repeat=6):
            env = dict(enumerate(bits))
            expected = circuit.simulate(list(bits))
            actual = [manager.evaluate(bdd, env) for bdd in bdds]
            assert actual == expected


class TestCecRefereeing:
    def test_bdd_and_sat_agree_on_equivalent_pairs(self):
        pairs = [
            (ripple_carry_adder(4), carry_select_adder(4, block=2)),
        ]
        base = random_circuit(7, 35, 3, seed=3)
        pairs.append((base, rewritten_copy(base, seed=4)))
        for left, right in pairs:
            sat_verdict = EquivalenceChecker(left, right).run().equivalent
            assert sat_verdict is True
            assert bdd_equivalent(left, right)

    @pytest.mark.parametrize("seed", range(6))
    def test_bdd_and_sat_agree_on_random_pairs(self, seed):
        left = random_circuit(6, 20, 2, seed=seed)
        right = random_circuit(6, 20, 2, seed=seed + 100)
        sat_verdict = EquivalenceChecker(left, right).run().equivalent
        assert sat_verdict == bdd_equivalent(left, right)


class TestReachabilityRefereeing:
    def test_exact_counts(self):
        ring = symbolic_reachability(token_ring_system(5), stop_at_bad=False)
        assert not ring.bad_reachable
        assert ring.num_reachable_states == 5  # the five token positions
        lfsr = symbolic_reachability(lfsr_system(5), stop_at_bad=False)
        assert not lfsr.bad_reachable
        assert lfsr.num_reachable_states == 31  # every non-zero seed

    def test_bmc_counterexample_depth_matches_exact_shortest_path(self):
        system = counter_system(4, bad_value=9)
        exact = symbolic_reachability(system)
        bmc = BoundedModelChecker(system).run(max_bound=12)
        assert exact.bad_reachable and bmc.property_violated
        assert bmc.counterexample.length == exact.shortest_counterexample == 9

    def test_bmc_safe_bound_consistent_with_exact(self):
        system = counter_system(4, bad_value=9)
        exact = symbolic_reachability(system)
        bmc = BoundedModelChecker(system).run(max_bound=exact.shortest_counterexample - 1)
        assert not bmc.property_violated  # BMC must be silent below the depth

    def test_interpolation_proof_agrees_with_exact_unreachability(self):
        for system in (token_ring_system(4), lfsr_system(4)):
            exact = symbolic_reachability(system, stop_at_bad=False)
            assert not exact.bad_reachable
            itp = InterpolationModelChecker(system).prove(max_bound=6)
            assert itp.status == "proved"

    def test_enabled_counter_nondeterministic_inputs(self):
        system = counter_system(3, bad_value=6, with_enable=True)
        exact = symbolic_reachability(system)
        assert exact.shortest_counterexample == 6
        bmc = BoundedModelChecker(system).run(max_bound=8)
        assert bmc.counterexample.length == 6
