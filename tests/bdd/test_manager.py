"""ROBDD manager: operations, canonicity, quantification, counting."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager
from repro.bdd.manager import FALSE, TRUE


@pytest.fixture
def manager():
    return BddManager()


class TestBasics:
    def test_terminals(self, manager):
        assert manager.true() == TRUE
        assert manager.false() == FALSE
        assert manager.not_(TRUE) == FALSE

    def test_var_and_evaluate(self, manager):
        x = manager.var(0)
        assert manager.evaluate(x, {0: True})
        assert not manager.evaluate(x, {0: False})

    def test_reduction_rule(self, manager):
        x = manager.var(0)
        assert manager.make_node(1, x, x) == x  # low == high collapses

    def test_hash_consing(self, manager):
        a = manager.and_(manager.var(0), manager.var(1))
        b = manager.and_(manager.var(0), manager.var(1))
        assert a == b  # canonical: same function, same node

    def test_de_morgan_canonically(self, manager):
        x, y = manager.var(0), manager.var(1)
        left = manager.not_(manager.and_(x, y))
        right = manager.or_(manager.not_(x), manager.not_(y))
        assert left == right

    def test_xor_xnor_complementary(self, manager):
        x, y = manager.var(0), manager.var(1)
        assert manager.not_(manager.xor(x, y)) == manager.xnor(x, y)

    def test_var_validation(self, manager):
        with pytest.raises(ValueError):
            manager.var(-1)


class TestSemantics:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_ops_match_python_booleans(self, data):
        manager = BddManager()
        num_vars = data.draw(st.integers(min_value=1, max_value=4))
        variables = [manager.var(i) for i in range(num_vars)]

        # Build a random expression tree alongside a Python lambda.
        def build(depth):
            if depth == 0 or data.draw(st.booleans()):
                index = data.draw(st.integers(0, num_vars - 1))
                return variables[index], (lambda env, i=index: env[i])
            op = data.draw(st.sampled_from(["and", "or", "xor", "not"]))
            left_bdd, left_fn = build(depth - 1)
            if op == "not":
                return manager.not_(left_bdd), (lambda env, f=left_fn: not f(env))
            right_bdd, right_fn = build(depth - 1)
            if op == "and":
                return manager.and_(left_bdd, right_bdd), (
                    lambda env, f=left_fn, g=right_fn: f(env) and g(env)
                )
            if op == "or":
                return manager.or_(left_bdd, right_bdd), (
                    lambda env, f=left_fn, g=right_fn: f(env) or g(env)
                )
            return manager.xor(left_bdd, right_bdd), (
                lambda env, f=left_fn, g=right_fn: f(env) != g(env)
            )

        bdd, fn = build(3)
        for bits in itertools.product([False, True], repeat=num_vars):
            env = dict(enumerate(bits))
            assert manager.evaluate(bdd, env) == fn(env)

    def test_restrict(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.and_(x, y)
        assert manager.restrict(f, 0, True) == y
        assert manager.restrict(f, 0, False) == FALSE

    def test_exists(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.and_(x, y)
        assert manager.exists([0], f) == y
        assert manager.exists([0, 1], f) == TRUE
        assert manager.exists([0, 1], FALSE) == FALSE

    def test_support(self, manager):
        x, z = manager.var(0), manager.var(2)
        assert manager.support(manager.xor(x, z)) == {0, 2}
        assert manager.support(TRUE) == set()

    def test_count_sat(self, manager):
        x, y = manager.var(0), manager.var(1)
        assert manager.count_sat(manager.and_(x, y), 2) == 1
        assert manager.count_sat(manager.or_(x, y), 2) == 3
        assert manager.count_sat(x, 3) == 4  # y, z free
        assert manager.count_sat(TRUE, 4) == 16
        assert manager.count_sat(FALSE, 4) == 0

    def test_count_sat_with_gap_levels(self, manager):
        f = manager.var(2)  # levels 0,1 unused above the root
        assert manager.count_sat(f, 4) == 8


class TestRename:
    def test_monotone_rename(self, manager):
        f = manager.and_(manager.var(1), manager.var(3))
        renamed = manager.rename(f, {1: 0, 3: 2})
        assert renamed == manager.and_(manager.var(0), manager.var(2))

    def test_non_monotone_rejected(self, manager):
        f = manager.and_(manager.var(0), manager.var(1))
        with pytest.raises(ValueError):
            manager.rename(f, {0: 3, 1: 2})

    def test_collision_rejected(self, manager):
        f = manager.and_(manager.var(0), manager.var(1))
        with pytest.raises(ValueError):
            manager.rename(f, {0: 1})
