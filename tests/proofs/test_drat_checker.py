"""DratChecker: RAT acceptance, exhaustive flip rejection, backward prune,
drat-trim deletion semantics, corruption matrix and fault probes.

The flip matrix is the subsystem's acceptance bar: for the generated
fixture family (tools/gen_drat.py) *every* single-literal flip of *every*
add step must be rejected by forward checking, and every core flip by
backward checking — in both encodings.
"""

from __future__ import annotations

import copy

import pytest

from repro import faults
from repro.checker import (
    CheckFailure,
    DratChecker,
    FailureKind,
    RupChecker,
    supervised_check,
)
from repro.cnf import CnfFormula

from tools.gen_drat import corruptions, generate

FORMATS = ("text", "binary")


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def _formula(inst) -> CnfFormula:
    return CnfFormula(inst.num_vars, [list(c) for c in inst.clauses])


def _materialize(inst, tmp_path, fmt, tag=""):
    proof = tmp_path / f"proof{tag}.{fmt}"
    inst.write_proof(proof, fmt)
    return proof


@pytest.fixture(scope="module")
def fixture_instance():
    return generate(core=4, dead=8, rat=2)


# -- acceptance ----------------------------------------------------------------


@pytest.mark.parametrize("fmt", FORMATS)
def test_rat_proof_accepted(fixture_instance, tmp_path, fmt):
    inst = fixture_instance
    proof = _materialize(inst, tmp_path, fmt)
    report = DratChecker(_formula(inst), proof).check()
    assert report.verified, report.failure
    assert report.method == "drat"
    assert report.proof["rat_lemmas"] == inst.rat_lemmas
    assert report.proof["rat_resolvents"] >= inst.rat_lemmas
    assert report.proof["adds"] == inst.num_adds
    assert report.proof["deletions"] == 1
    assert report.proof["mode"] == "forward"
    assert not report.proof["implicit_empty"]


def test_encodings_produce_identical_reports(fixture_instance, tmp_path):
    """Same proof, either encoding: verdict *and* every counter agree."""
    inst = fixture_instance
    stats = {}
    for fmt in FORMATS:
        report = DratChecker(_formula(inst), _materialize(inst, tmp_path, fmt)).check()
        assert report.verified
        stats[fmt] = (
            report.proof,
            report.clauses_built,
            report.total_learned,
            report.resolutions,
        )
    assert stats["text"] == stats["binary"]


@pytest.mark.parametrize("fmt", FORMATS)
def test_deletions_variant_accepted(tmp_path, fmt):
    inst = generate(core=3, dead=6, rat=1, deletions=True)
    proof = _materialize(inst, tmp_path, fmt)
    report = DratChecker(_formula(inst), proof).check()
    assert report.verified, report.failure
    assert report.proof["deletions"] == inst.dead_lemmas + 1


def test_unknown_deletion_tolerated(tmp_path):
    """drat-trim semantics: deleting a clause never added is a no-op."""
    inst = generate(core=2, dead=0, rat=0)
    inst = copy.deepcopy(inst)
    inst.steps.insert(0, ("delete", [997, 998]))
    proof = _materialize(inst, tmp_path, "text")
    report = DratChecker(_formula(inst), proof).check()
    assert report.verified, report.failure


def test_vacuous_rat_accepted(tmp_path):
    """A lemma whose negated pivot has no occurrences is vacuously RAT."""
    formula = CnfFormula(5, [[1, 2], [1, -2], [-1, 2], [-1, -2]])
    proof = tmp_path / "p.drat"
    proof.write_text("5 4 0\n1 0\n0\n")  # -5 occurs nowhere
    report = DratChecker(formula, proof).check()
    assert report.verified, report.failure
    assert report.proof["rat_lemmas"] >= 1


def test_implicit_empty_clause_accepted(tmp_path):
    """No explicit 0-line, but the final database conflicts: accepted."""
    formula = CnfFormula(2, [[1, 2], [1, -2], [-1, 2], [-1, -2]])
    proof = tmp_path / "p.drup"
    proof.write_text("1 0\n2 0\n")
    report = DratChecker(formula, proof).check()
    assert report.verified, report.failure
    assert report.proof["implicit_empty"]


# -- rejection -----------------------------------------------------------------


def test_not_empty_rejected(tmp_path):
    formula = CnfFormula(2, [[1, 2], [-1, 2]])
    proof = tmp_path / "p.drup"
    proof.write_text("2 0\n")
    report = DratChecker(formula, proof).check()
    assert not report.verified
    assert report.failure.kind == FailureKind.NOT_EMPTY


def test_bogus_empty_clause_rejected(tmp_path):
    formula = CnfFormula(2, [[1, 2]])
    proof = tmp_path / "p.drup"
    proof.write_text("0\n")
    report = DratChecker(formula, proof).check()
    assert not report.verified
    assert report.failure.kind == FailureKind.NOT_RAT


def _flip_variants(inst):
    """Yield (label, mutated instance, add_ordinal) for every single-literal
    flip of every non-empty add step."""
    ordinal = -1
    for step_index, (kind, literals) in enumerate(inst.steps):
        if kind != "add" or not literals:
            continue
        ordinal += 1
        for lit_index in range(len(literals)):
            mutated = copy.deepcopy(inst)
            mutated.steps[step_index][1][lit_index] *= -1
            yield f"add#{ordinal}[{lit_index}]", mutated, ordinal


@pytest.mark.parametrize("fmt", FORMATS)
def test_forward_rejects_every_literal_flip(tmp_path, fmt):
    inst = generate(core=3, dead=4, rat=1)
    formula = _formula(inst)
    accepted = []
    for label, mutated, _ in _flip_variants(inst):
        proof = _materialize(mutated, tmp_path, fmt, tag=label)
        report = DratChecker(formula, proof).check()
        if report.verified:
            accepted.append(label)
    assert not accepted, f"forward accepted flipped proofs: {accepted}"


@pytest.mark.parametrize("fmt", FORMATS)
def test_backward_rejects_every_core_flip(tmp_path, fmt):
    """Backward checking skips dead lemmas by design, but a flip inside the
    refutation's core must still be caught."""
    inst = generate(core=3, dead=4, rat=1)
    formula = _formula(inst)
    core = set(inst.core_ordinals)
    accepted = []
    for label, mutated, ordinal in _flip_variants(inst):
        if ordinal not in core:
            continue
        proof = _materialize(mutated, tmp_path, fmt, tag="b" + label)
        report = DratChecker(formula, proof, backward=True).check()
        if report.verified:
            accepted.append(label)
    assert not accepted, f"backward accepted flipped core proofs: {accepted}"


# -- backward checking ---------------------------------------------------------


@pytest.mark.parametrize("fmt", FORMATS)
def test_backward_verdict_matches_forward(fixture_instance, tmp_path, fmt):
    inst = fixture_instance
    proof = _materialize(inst, tmp_path, fmt)
    formula = _formula(inst)
    forward = DratChecker(formula, proof).check()
    backward = DratChecker(formula, proof, backward=True).check()
    assert forward.verified and backward.verified
    assert backward.proof["mode"] == "backward"


def test_backward_prunes_dead_lemmas(fixture_instance, tmp_path):
    inst = fixture_instance
    proof = _materialize(inst, tmp_path, "text")
    report = DratChecker(_formula(inst), proof, backward=True).check()
    assert report.verified
    prune = report.prune
    assert prune["mode"] == "backward"
    assert prune["total_adds"] == inst.num_adds
    assert prune["verified_adds"] + prune["skipped"] == prune["total_adds"]
    # The fixture's dead + RAT lemmas are all outside the core.
    assert prune["skipped"] >= inst.dead_lemmas
    assert prune["dead_fraction"] >= 0.30


# -- RupChecker on the new parser ----------------------------------------------


@pytest.mark.parametrize("fmt", FORMATS)
def test_rup_checker_reads_both_encodings(tmp_path, fmt):
    """The migrated RupChecker consumes binary DRUP via the shared parser."""
    inst = generate(core=3, dead=2, rat=0)  # rat=0: pure RUP proof
    proof = _materialize(inst, tmp_path, fmt)
    report = RupChecker(_formula(inst), proof).check()
    assert report.verified, report.failure


def test_rup_checker_rejects_rat_lemmas(fixture_instance, tmp_path):
    """Genuine RAT steps are beyond RUP — the RUP checker must say so."""
    inst = fixture_instance
    proof = _materialize(inst, tmp_path, "text")
    report = RupChecker(_formula(inst), proof).check()
    assert not report.verified


# -- corruption matrix ---------------------------------------------------------


@pytest.mark.parametrize("fmt", FORMATS)
def test_corruption_matrix_all_rejected(fixture_instance, tmp_path, fmt):
    inst = fixture_instance
    proof = _materialize(inst, tmp_path, fmt)
    formula = _formula(inst)
    survivors = []
    for name, corrupted in corruptions(proof, fmt):
        mangled = tmp_path / f"{name}.{fmt}"
        mangled.write_bytes(corrupted)
        report = DratChecker(formula, mangled).check()
        if report.verified:
            survivors.append(name)
        else:
            assert report.failure.kind in (
                FailureKind.MALFORMED_PROOF,
                FailureKind.NOT_RAT,
                FailureKind.BAD_RESOLUTION,
                FailureKind.NOT_EMPTY,
            ), (name, report.failure.kind)
    assert not survivors, f"corrupted proofs accepted: {survivors}"


# -- fault probes --------------------------------------------------------------


def test_fault_probe_parse_raises_directly(fixture_instance, tmp_path):
    inst = fixture_instance
    proof = _materialize(inst, tmp_path, "text")
    faults.install_plan("point=proofs.parse,kind=raise")
    with pytest.raises(faults.FaultInjected):
        DratChecker(_formula(inst), proof).check()


@pytest.mark.parametrize("point", ["proofs.check.step", "proofs.check.finalize"])
def test_fault_probe_check_raises_directly(fixture_instance, tmp_path, point):
    inst = fixture_instance
    proof = _materialize(inst, tmp_path, "binary")
    faults.install_plan(f"point={point},kind=raise")
    with pytest.raises(faults.FaultInjected):
        DratChecker(_formula(inst), proof).check()


def test_supervised_drat_classifies_injected_fault(fixture_instance, tmp_path):
    """Through the supervisor, an injected fault is a WORKER_CRASH verdict,
    not an exception — same contract as the trace checkers."""
    inst = fixture_instance
    proof = _materialize(inst, tmp_path, "text")
    faults.install_plan("point=proofs.check.step,kind=raise")
    report = supervised_check(_formula(inst), proof, method="drat", timeout=30.0)
    assert not report.verified
    assert report.failure.kind == FailureKind.WORKER_CRASH


def test_supervised_drat_backward(fixture_instance, tmp_path):
    inst = fixture_instance
    proof = _materialize(inst, tmp_path, "text")
    report = supervised_check(
        _formula(inst), proof, method="drat", backward=True, timeout=30.0
    )
    assert report.verified, report.failure
    assert report.prune["skipped"] >= inst.dead_lemmas


def test_check_failure_reports_are_serializable(fixture_instance, tmp_path):
    """DRAT reports (incl. proof stats and failures) survive the JSON path."""
    from repro.checker.report import CheckReport

    inst = fixture_instance
    proof = _materialize(inst, tmp_path, "text")
    report = DratChecker(_formula(inst), proof, backward=True).check()
    clone = CheckReport.from_json(report.to_json())
    assert clone.verified == report.verified
    assert clone.proof == report.proof
    assert clone.prune == report.prune
