"""CLI surface for clausal proofs: --proof-format routing, --backward,
solve --drup-format, and the validation errors between them."""

from __future__ import annotations

import json

import pytest

from repro.cli import check_main, solve_main
from repro.proofs import detect_proof_encoding

from tools.gen_drat import generate


@pytest.fixture
def drat_files(tmp_path):
    inst = generate(core=3, dead=4, rat=1)
    cnf = tmp_path / "inst.cnf"
    inst.write_cnf(cnf)
    text = tmp_path / "inst.drat"
    inst.write_proof(text, "text")
    binary = tmp_path / "inst.bdrat"
    inst.write_proof(binary, "binary")
    return str(cnf), str(text), str(binary)


@pytest.mark.parametrize("which", [1, 2])  # text, binary
def test_check_drat_explicit(drat_files, capsys, which):
    cnf = drat_files[0]
    proof = drat_files[which]
    assert check_main([cnf, proof, "--method", "drat"]) == 0
    assert "Check Succeeded" in capsys.readouterr().out


def test_check_auto_detects_clausal_proof(drat_files, capsys):
    """No flags at all: the default df method sniffs the file and routes a
    clausal proof to the DRAT checker."""
    cnf, text, binary = drat_files
    for proof in (text, binary):
        assert check_main([cnf, proof, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "drat"
        assert payload["verified"] is True


def test_check_proof_format_drup_routes_to_rup(drat_files, tmp_path, capsys):
    cnf = drat_files[0]
    inst = generate(core=3, dead=2, rat=0)  # pure RUP content
    cnf = tmp_path / "rup.cnf"
    inst.write_cnf(cnf)
    proof = tmp_path / "rup.drup"
    inst.write_proof(proof, "text")
    assert check_main([str(cnf), str(proof), "--proof-format", "drup",
                       "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out)["method"] == "rup"


def test_check_backward_reports_prune(drat_files, capsys):
    cnf, text, _ = drat_files
    assert check_main([cnf, text, "--method", "drat", "--backward",
                       "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verified"] is True
    assert payload["prune"]["mode"] == "backward"
    assert payload["prune"]["skipped"] >= 4


def test_check_flipped_proof_fails(drat_files, tmp_path, capsys):
    cnf, text, _ = drat_files
    from pathlib import Path

    lines = Path(text).read_text().splitlines()
    tokens = lines[0].split()
    tokens[0] = str(-int(tokens[0]))
    lines[0] = " ".join(tokens)
    flipped = tmp_path / "flipped.drat"
    flipped.write_text("\n".join(lines) + "\n")
    assert check_main([cnf, str(flipped), "--method", "drat"]) == 1
    assert "Check Failed" in capsys.readouterr().out


@pytest.mark.parametrize("argv_tail", [
    ["--method", "rup", "--proof-format", "trace"],
    ["--method", "drat", "--proof-format", "trace"],
    ["--method", "drat", "--proof-format", "drup"],
    ["--method", "rup", "--proof-format", "drat"],
    ["--method", "bf", "--proof-format", "drat"],
    ["--method", "bf", "--backward"],    # --backward needs the drat method
    ["--method", "drat", "--prune"],     # trace-only flag
    ["--method", "drat", "--precheck"],  # trace-only flag
    ["--method", "drat", "--parallel", "2"],
])
def test_check_rejects_conflicting_proof_flags(drat_files, argv_tail):
    cnf, text, _ = drat_files
    with pytest.raises(SystemExit):
        check_main([cnf, text, *argv_tail])


@pytest.mark.parametrize("fmt", ["text", "binary"])
def test_solve_drup_format_end_to_end(tmp_path, fmt):
    from repro.cnf import write_dimacs_file
    from repro.generators import pigeonhole

    cnf = tmp_path / "php.cnf"
    write_dimacs_file(pigeonhole(4, 3), cnf)
    proof = tmp_path / "php.proof"
    assert solve_main([str(cnf), "--drup", str(proof),
                       "--drup-format", fmt]) == 0
    assert detect_proof_encoding(proof) == fmt
    # Both clausal checkers accept the solver's proof in either encoding.
    assert check_main([str(cnf), str(proof), "--method", "drat"]) == 0
    assert check_main([str(cnf), str(proof), "--method", "rup"]) == 0
