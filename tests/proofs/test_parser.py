"""Clausal proof parser: round-trip parity, detection, malformed inputs.

The text and binary encodings must be perfectly interchangeable: any step
sequence written through either writer reads back as the same steps, and
the two encodings of one proof are step-for-step identical. Malformations
are a distinct verdict (MALFORMED_PROOF), never a crash or a silent
acceptance.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker.errors import CheckFailure, FailureKind
from repro.proofs import (
    BinaryProofWriter,
    TextProofWriter,
    detect_proof_encoding,
    detect_source_format,
    iter_proof_steps,
    open_proof_writer,
    read_proof,
)

literal = st.integers(min_value=-60, max_value=60).filter(lambda lit: lit != 0)
clause = st.lists(literal, max_size=6)
step = st.tuples(st.sampled_from(["add", "delete"]), clause)
steps_strategy = st.lists(step, max_size=24)


def _write(path, steps, fmt):
    with open_proof_writer(path, fmt) as writer:
        for kind, literals in steps:
            if kind == "delete":
                writer.delete_clause(literals)
            else:
                writer.add_clause(literals)


# -- round-trip parity ---------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(steps=steps_strategy)
def test_text_binary_round_trip_parity(steps, tmp_path_factory):
    """Both encodings of one step list decode back to exactly that list."""
    root = tmp_path_factory.mktemp("proofs")
    decoded = {}
    for fmt in ("text", "binary"):
        path = root / f"p.{fmt}"
        _write(path, steps, fmt)
        assert detect_proof_encoding(path) == fmt or not steps
        decoded[fmt] = list(iter_proof_steps(path, encoding=fmt))
    expected = [(kind, list(lits)) for kind, lits in steps]
    assert decoded["text"] == expected
    assert decoded["binary"] == expected


@settings(max_examples=50, deadline=None)
@given(steps=steps_strategy)
def test_auto_detection_round_trip(steps, tmp_path_factory):
    """encoding='auto' picks the right decoder for either encoding."""
    root = tmp_path_factory.mktemp("proofs")
    for fmt in ("text", "binary"):
        path = root / f"p.{fmt}"
        _write(path, steps, fmt)
        assert list(iter_proof_steps(path)) == [
            (kind, list(lits)) for kind, lits in steps
        ]


def test_read_proof_counts(tmp_path):
    path = tmp_path / "p.drat"
    path.write_text("1 2 0\nd 1 2 0\nc comment\n-3 0\n0\n")
    doc = read_proof(path)
    assert doc.encoding == "text"
    assert doc.num_adds == 2
    assert doc.num_deletes == 1
    assert doc.has_empty
    assert list(doc) == [
        ("add", [1, 2]),
        ("delete", [1, 2]),
        ("add", [-3]),
        ("add", []),
    ]


def test_empty_proof_round_trip(tmp_path):
    """A zero-length file is the valid (if useless) empty proof."""
    for fmt in ("text", "binary"):
        path = tmp_path / f"empty.{fmt}"
        _write(path, [], fmt)
        doc = read_proof(path)
        assert doc.steps == []
        assert not doc.has_empty


def test_finish_unsat_is_the_empty_add(tmp_path):
    for fmt in ("text", "binary"):
        path = tmp_path / f"p.{fmt}"
        with open_proof_writer(path, fmt) as writer:
            writer.add_clause([1])
            writer.finish_unsat()
        assert list(iter_proof_steps(path)) == [("add", [1]), ("add", [])]


# -- encoding / source detection -----------------------------------------------


def test_detect_encoding_text_shapes(tmp_path):
    for body in ("1 2 0\n", "-1 0\n", "c hi\n1 0\n", "d 1 0\n", "0\n", ""):
        path = tmp_path / "p.drup"
        path.write_text(body)
        assert detect_proof_encoding(path) == "text", repr(body)


def test_detect_encoding_binary_shapes(tmp_path):
    path = tmp_path / "p.bdrat"
    path.write_bytes(bytes([0x61, 0x02, 0x00]))  # "a 1 0"
    assert detect_proof_encoding(path) == "binary"
    path.write_bytes(bytes([0x64, 0x02, 0x00]))  # "d 1 0" binary
    assert detect_proof_encoding(path) == "binary"


def test_detect_source_format(tmp_path):
    from repro.trace.binary_format import MAGIC

    proof = tmp_path / "p.drat"
    proof.write_text("1 2 0\n0\n")
    assert detect_source_format(proof) == "proof"

    trace = tmp_path / "t.trace"
    trace.write_text("# resolution trace\nCL 1 1 2 0\n")
    assert detect_source_format(trace) == "trace"
    trace.write_text("T 10 5\n")
    assert detect_source_format(trace) == "trace"

    binary_trace = tmp_path / "t.rtb"
    binary_trace.write_bytes(MAGIC + b"\x00\x01")
    assert detect_source_format(binary_trace) == "trace"

    binary_proof = tmp_path / "p.bdrat"
    binary_proof.write_bytes(bytes([0x61, 0x02, 0x00]))
    assert detect_source_format(binary_proof) == "proof"


# -- malformed proofs ----------------------------------------------------------


def _malformed(path, encoding="auto"):
    with pytest.raises(CheckFailure) as excinfo:
        list(iter_proof_steps(path, encoding=encoding))
    assert excinfo.value.kind == FailureKind.MALFORMED_PROOF
    return excinfo.value


def test_text_missing_terminator(tmp_path):
    path = tmp_path / "p.drup"
    path.write_text("1 2\n")
    failure = _malformed(path)
    assert failure.context["line_number"] == 1


def test_text_non_integer_token(tmp_path):
    path = tmp_path / "p.drup"
    path.write_text("1 banana 0\n")
    _malformed(path)


def test_text_stray_zero_inside_clause(tmp_path):
    path = tmp_path / "p.drup"
    path.write_text("1 0 2 0\n")
    _malformed(path)


def test_binary_bytes_parsed_as_text(tmp_path):
    """Forcing encoding='text' on a binary proof is malformed, not a crash."""
    path = tmp_path / "p.bdrat"
    with open_proof_writer(path, "binary") as writer:
        for lit in range(1, 200):
            writer.add_clause([lit, -(lit + 1)])
    _malformed(path, encoding="text")


def test_binary_bogus_tag(tmp_path):
    path = tmp_path / "p.bdrat"
    path.write_bytes(bytes([0x62, 0x02, 0x00]))
    failure = _malformed(path)
    assert "tag" in failure.message


def test_binary_missing_step_terminator(tmp_path):
    path = tmp_path / "p.bdrat"
    path.write_bytes(bytes([0x61, 0x02]))  # "a 1" then EOF
    _malformed(path)


def test_binary_truncated_varint(tmp_path):
    path = tmp_path / "p.bdrat"
    path.write_bytes(bytes([0x61, 0x80]))  # continuation bit, no next byte
    _malformed(path)


@settings(max_examples=80, deadline=None)
@given(cut=st.integers(min_value=0, max_value=200))
def test_truncated_binary_proof_never_crashes(cut, tmp_path_factory):
    """Any prefix of a valid binary proof parses or is MALFORMED_PROOF."""
    root = tmp_path_factory.mktemp("proofs")
    full = root / "full.bdrat"
    steps = [("add", [i, -(i + 1), 300 + i]) for i in range(1, 40)]
    _write(full, steps, "binary")
    blob = full.read_bytes()
    truncated = root / "cut.bdrat"
    truncated.write_bytes(blob[: min(cut, len(blob))])
    try:
        list(iter_proof_steps(truncated, encoding="binary"))
    except CheckFailure as failure:
        assert failure.kind == FailureKind.MALFORMED_PROOF


@settings(max_examples=60, deadline=None)
@given(payload=st.binary(max_size=120))
def test_random_bytes_never_crash_binary_decoder(payload, tmp_path_factory):
    root = tmp_path_factory.mktemp("proofs")
    path = root / "junk.bdrat"
    path.write_bytes(payload)
    try:
        list(iter_proof_steps(path, encoding="binary"))
    except CheckFailure as failure:
        assert failure.kind == FailureKind.MALFORMED_PROOF


# -- writers -------------------------------------------------------------------


def test_writers_reject_literal_zero(tmp_path):
    for fmt, cls in (("text", TextProofWriter), ("binary", BinaryProofWriter)):
        with cls(tmp_path / f"p.{fmt}") as writer:
            with pytest.raises(ValueError):
                writer.add_clause([1, 0, 2])
            with pytest.raises(ValueError):
                writer.delete_clause([0])


def test_open_proof_writer_rejects_unknown_format(tmp_path):
    with pytest.raises(ValueError):
        open_proof_writer(tmp_path / "p", "gzip")


def test_unknown_encoding_rejected(tmp_path):
    path = tmp_path / "p.drup"
    path.write_text("0\n")
    with pytest.raises(ValueError):
        list(iter_proof_steps(path, encoding="morse"))
