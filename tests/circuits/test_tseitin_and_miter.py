"""Tseitin encoding and miter correctness, cross-checked against simulation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    build_miter,
    equivalence_cnf,
    miter_to_cnf,
    random_circuit,
    rewritten_copy,
    tseitin_encode,
)
from repro.solver import solve_formula
from repro.solver.reference import reference_is_satisfiable


def _exhaustive_tseitin_check(circuit: Circuit) -> None:
    """For every input assignment, CNF + pinned inputs forces the simulated
    outputs (and is satisfiable)."""
    encoded = tseitin_encode(circuit)
    for bits in itertools.product([False, True], repeat=len(circuit.inputs)):
        formula_clauses = [list(c.literals) for c in encoded.formula]
        for net, value in zip(circuit.inputs, bits):
            var = encoded.var(net)
            formula_clauses.append([var if value else -var])
        expected = circuit.simulate(list(bits))
        # Pin outputs to the simulated values: must stay SAT.
        from repro.cnf import CnfFormula

        pinned = CnfFormula(encoded.formula.num_vars, formula_clauses)
        for net, value in zip(circuit.outputs, expected):
            var = encoded.var(net)
            pinned.add_clause([var if value else -var])
        assert reference_is_satisfiable(pinned)
        # Pin one output to the wrong value: must be UNSAT.
        wrong = CnfFormula(encoded.formula.num_vars, formula_clauses)
        var = encoded.var(circuit.outputs[0])
        wrong.add_clause([-var if expected[0] else var])
        assert not reference_is_satisfiable(wrong)


def test_tseitin_every_gate_type():
    circuit = Circuit()
    a, b, c = circuit.add_inputs(3)
    circuit.mark_output(circuit.and_(a, b, c))
    circuit.mark_output(circuit.or_(a, b))
    circuit.mark_output(circuit.not_(a))
    circuit.mark_output(circuit.xor(a, b))
    circuit.mark_output(circuit.xnor(b, c))
    circuit.mark_output(circuit.nand(a, c))
    circuit.mark_output(circuit.nor(a, b, c))
    circuit.mark_output(circuit.buf(b))
    circuit.mark_output(circuit.mux(a, b, c))
    circuit.mark_output(circuit.const(True))
    _exhaustive_tseitin_check(circuit)


def test_tseitin_bindings_reuse_variables():
    circuit = Circuit()
    a, b = circuit.add_inputs(2)
    circuit.mark_output(circuit.and_(a, b))
    from repro.cnf import CnfFormula

    formula = CnfFormula(5)  # pre-existing variables 1..5
    encoded = tseitin_encode(circuit, formula, bindings={a: 2, b: 4})
    assert encoded.var(a) == 2
    assert encoded.var(b) == 4
    assert encoded.var(circuit.outputs[0]) > 5


def test_miter_of_identical_circuits_is_unsat():
    circuit = random_circuit(6, 25, 3, seed=5)
    same = random_circuit(6, 25, 3, seed=5)
    assert solve_formula(equivalence_cnf(circuit, same)).is_unsat


def test_miter_of_rewritten_copy_is_unsat():
    circuit = random_circuit(8, 40, 3, seed=6)
    copy = rewritten_copy(circuit, seed=7)
    # Simulation agreement first (sanity for the rewriter itself).
    for bits in itertools.islice(itertools.product([False, True], repeat=8), 40):
        assert circuit.simulate(list(bits)) == copy.simulate(list(bits))
    assert solve_formula(equivalence_cnf(circuit, copy)).is_unsat


def test_miter_detects_inequivalence():
    left = Circuit()
    a, b = left.add_inputs(2)
    left.mark_output(left.and_(a, b))
    right = Circuit()
    a2, b2 = right.add_inputs(2)
    right.mark_output(right.or_(a2, b2))
    result = solve_formula(equivalence_cnf(left, right))
    assert result.is_sat  # a distinguishing input exists


def test_miter_arity_mismatch_rejected():
    left = Circuit()
    left.add_input()
    left.mark_output(left.not_(left.inputs[0]))
    right = Circuit()
    right.add_inputs(2)
    right.mark_output(right.and_(*right.inputs))
    with pytest.raises(ValueError):
        build_miter(left, right)


def test_miter_to_cnf_requires_single_output():
    circuit = Circuit()
    a = circuit.add_input()
    circuit.mark_output(a)
    circuit.mark_output(a)
    with pytest.raises(ValueError):
        miter_to_cnf(circuit)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_rewritten_copy_equivalence_property(seed):
    circuit = random_circuit(5, 15, 2, seed=seed)
    copy = rewritten_copy(circuit, seed=seed + 1)
    for bits in itertools.product([False, True], repeat=5):
        assert circuit.simulate(list(bits)) == copy.simulate(list(bits))
