"""Arithmetic and shifter circuits: functional correctness + miter UNSAT."""

import itertools
import random

import pytest

from repro.circuits import (
    adder_equivalence_miter,
    array_multiplier,
    barrel_shifter,
    carry_select_adder,
    miter_to_cnf,
    multiplier_commutativity_miter,
    naive_shifter,
    ripple_carry_adder,
    shifter_equivalence_miter,
)
from repro.solver import solve_formula


def _bits(value: int, width: int) -> list[bool]:
    return [bool((value >> i) & 1) for i in range(width)]


def _value(bits: list[bool]) -> int:
    return sum(1 << i for i, bit in enumerate(bits) if bit)


@pytest.mark.parametrize("width", [1, 3, 4])
def test_ripple_carry_adder_adds(width):
    adder = ripple_carry_adder(width)
    for a in range(1 << width):
        for b in range(1 << width):
            out = adder.simulate(_bits(a, width) + _bits(b, width))
            assert _value(out) == a + b


@pytest.mark.parametrize("width,block", [(4, 1), (4, 2), (5, 3), (6, 4)])
def test_carry_select_adder_matches_ripple(width, block):
    rca = ripple_carry_adder(width)
    csa = carry_select_adder(width, block=block)
    rng = random.Random(0)
    for _ in range(60):
        a, b = rng.randrange(1 << width), rng.randrange(1 << width)
        inputs = _bits(a, width) + _bits(b, width)
        assert rca.simulate(inputs) == csa.simulate(inputs)


@pytest.mark.parametrize("width", [1, 2, 3])
def test_array_multiplier_multiplies(width):
    mult = array_multiplier(width)
    for a in range(1 << width):
        for b in range(1 << width):
            out = mult.simulate(_bits(a, width) + _bits(b, width))
            assert _value(out) == a * b


def test_multiplier_width_4_spot_checks():
    mult = array_multiplier(4)
    rng = random.Random(1)
    for _ in range(40):
        a, b = rng.randrange(16), rng.randrange(16)
        out = mult.simulate(_bits(a, 4) + _bits(b, 4))
        assert _value(out) == a * b


@pytest.mark.parametrize("width", [2, 4, 8])
def test_barrel_shifter_rotates(width):
    shifter = barrel_shifter(width)
    stages = width.bit_length() - 1
    rng = random.Random(2)
    for _ in range(40):
        word = rng.randrange(1 << width)
        amount = rng.randrange(width)
        out = shifter.simulate(_bits(word, width) + _bits(amount, stages))
        expected = ((word << amount) | (word >> (width - amount))) & ((1 << width) - 1)
        assert _value(out) == expected


def test_naive_shifter_matches_barrel():
    barrel = barrel_shifter(8)
    naive = naive_shifter(8)
    rng = random.Random(3)
    for _ in range(60):
        inputs = [rng.random() < 0.5 for _ in range(11)]
        assert barrel.simulate(inputs) == naive.simulate(inputs)


def test_width_validation():
    with pytest.raises(ValueError):
        ripple_carry_adder(0)
    with pytest.raises(ValueError):
        array_multiplier(0)
    with pytest.raises(ValueError):
        barrel_shifter(3)  # not a power of two
    with pytest.raises(ValueError):
        naive_shifter(1)


@pytest.mark.parametrize(
    "miter_factory",
    [
        lambda: adder_equivalence_miter(6, block=2),
        lambda: multiplier_commutativity_miter(3),
        lambda: shifter_equivalence_miter(4),
    ],
)
def test_equivalence_miters_are_unsat(miter_factory):
    formula = miter_to_cnf(miter_factory())
    assert solve_formula(formula).is_unsat


def test_mult_commutativity_miter_simulates_to_zero():
    miter = multiplier_commutativity_miter(3)
    rng = random.Random(4)
    for _ in range(30):
        inputs = [rng.random() < 0.5 for _ in range(6)]
        assert miter.simulate(inputs) == [False]
