"""Unit tests for the netlist substrate."""

import pytest

from repro.circuits import Circuit, GateType


def test_nets_are_allocated_sequentially():
    circuit = Circuit()
    a = circuit.add_input()
    b = circuit.add_input()
    out = circuit.and_(a, b)
    assert (a, b, out) == (1, 2, 3)


def test_gate_arity_enforced():
    circuit = Circuit()
    a = circuit.add_input()
    with pytest.raises(ValueError):
        circuit.add_gate(GateType.NOT, a, a)
    with pytest.raises(ValueError):
        circuit.add_gate(GateType.AND, a)
    with pytest.raises(ValueError):
        circuit.add_gate(GateType.MUX, a, a)


def test_undefined_net_rejected():
    circuit = Circuit()
    a = circuit.add_input()
    with pytest.raises(ValueError):
        circuit.and_(a, 99)


def test_mark_output_requires_defined_net():
    circuit = Circuit()
    with pytest.raises(ValueError):
        circuit.mark_output(5)


@pytest.mark.parametrize(
    "build,truth",
    [
        (lambda c, a, b: c.and_(a, b), [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)]),
        (lambda c, a, b: c.or_(a, b), [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)]),
        (lambda c, a, b: c.xor(a, b), [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)]),
        (lambda c, a, b: c.xnor(a, b), [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1)]),
        (lambda c, a, b: c.nand(a, b), [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)]),
        (lambda c, a, b: c.nor(a, b), [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)]),
    ],
)
def test_binary_gate_truth_tables(build, truth):
    circuit = Circuit()
    a, b = circuit.add_inputs(2)
    circuit.mark_output(build(circuit, a, b))
    for va, vb, expected in truth:
        assert circuit.simulate([bool(va), bool(vb)]) == [bool(expected)]


def test_not_buf_const():
    circuit = Circuit()
    a = circuit.add_input()
    circuit.mark_output(circuit.not_(a))
    circuit.mark_output(circuit.buf(a))
    circuit.mark_output(circuit.const(True))
    circuit.mark_output(circuit.const(False))
    assert circuit.simulate([True]) == [False, True, True, False]


def test_mux():
    circuit = Circuit()
    s, a, b = circuit.add_inputs(3)
    circuit.mark_output(circuit.mux(s, a, b))
    assert circuit.simulate([False, True, False]) == [True]  # select=0 -> a
    assert circuit.simulate([True, True, False]) == [False]  # select=1 -> b


def test_simulate_checks_input_count():
    circuit = Circuit()
    circuit.add_input()
    with pytest.raises(ValueError):
        circuit.simulate([True, False])
