"""ISCAS .bench format I/O."""

import itertools

import pytest

from repro.circuits import (
    BenchFormatError,
    Circuit,
    SequentialCircuit,
    parse_bench,
    parse_bench_file,
    random_circuit,
    write_bench,
    write_bench_file,
)

C17 = """\
# ISCAS-85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def test_parse_c17():
    circuit = parse_bench(C17)
    assert isinstance(circuit, Circuit)
    assert len(circuit.inputs) == 5
    assert len(circuit.outputs) == 2
    assert circuit.num_gates == 6
    # Spot-check against hand-evaluated c17 behaviour.
    assert circuit.simulate([True, True, True, True, True]) == [True, False]
    assert circuit.simulate([False, False, False, False, False]) == [False, False]


def test_out_of_order_definitions_accepted():
    text = """\
INPUT(A)
OUTPUT(C)
C = NOT(B)
B = BUFF(A)
"""
    circuit = parse_bench(text)
    assert circuit.simulate([True]) == [False]


def test_sequential_bench_produces_design():
    text = """\
INPUT(EN)
OUTPUT(Q)
Q = DFF(D)
D = XOR(Q, EN)
"""
    design = parse_bench(text)
    assert isinstance(design, SequentialCircuit)
    assert design.num_registers == 1
    assert design.num_primary_inputs == 1
    state = [False]
    values = []
    for _ in range(4):
        values.append(state[0])
        state, _ = design.simulate_cycle(state, [True])
    assert values == [False, True, False, True]


@pytest.mark.parametrize(
    "bad",
    [
        "G1 = FROB(G2)\n",
        "G1 = DFF(A, B)\nINPUT(A)\nINPUT(B)\n",
        "OUTPUT(G9)\n",
        "INPUT(A)\nG2 = AND()\n",
        "INPUT(A)\nA = NOT(A)\n",
        "INPUT(A)\nB = NOT(C)\nOUTPUT(B)\n",
    ],
)
def test_malformed_inputs_rejected(bad):
    with pytest.raises(BenchFormatError):
        parse_bench(bad)


def test_roundtrip_combinational():
    circuit = random_circuit(6, 30, 3, seed=8)
    again = parse_bench(write_bench(circuit))
    for bits in itertools.islice(itertools.product([False, True], repeat=6), 30):
        assert circuit.simulate(list(bits)) == again.simulate(list(bits))


def test_roundtrip_with_mux_and_constants():
    circuit = Circuit(name="lowering")
    s, a, b = circuit.add_inputs(3)
    circuit.mark_output(circuit.mux(s, a, b))
    circuit.mark_output(circuit.const(True))
    circuit.mark_output(circuit.const(False))
    again = parse_bench(write_bench(circuit))
    for bits in itertools.product([False, True], repeat=3):
        assert circuit.simulate(list(bits)) == again.simulate(list(bits))


def test_file_roundtrip(tmp_path):
    circuit = random_circuit(5, 20, 2, seed=9)
    path = tmp_path / "c.bench"
    write_bench_file(circuit, path)
    again = parse_bench_file(path)
    for bits in itertools.product([False, True], repeat=5):
        assert circuit.simulate(list(bits)) == again.simulate(list(bits))


def test_constants_without_inputs_rejected():
    circuit = Circuit()
    circuit.mark_output(circuit.const(True))
    with pytest.raises(ValueError):
        write_bench(circuit)


def test_bench_to_cec_pipeline():
    """Parse a .bench circuit, rewrite it, and prove equivalence."""
    from repro.apps import EquivalenceChecker
    from repro.circuits import rewritten_copy

    circuit = parse_bench(C17)
    outcome = EquivalenceChecker(circuit, rewritten_copy(circuit, seed=3)).run()
    assert outcome.equivalent is True
