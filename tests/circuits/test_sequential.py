"""Sequential circuits and the bridge to transition systems."""

import pytest

from repro.apps import BoundedModelChecker, InterpolationModelChecker
from repro.circuits import Circuit, Register, SequentialCircuit, to_transition_system


def _toggle_design():
    """One register toggling every cycle; bad = register high."""
    core = Circuit(name="toggle")
    state = core.add_input()
    nxt = core.not_(state)
    core.mark_output(state)  # output 0: the bad signal (state itself)
    registers = [Register(output=state, next_input=nxt, init=False)]
    return SequentialCircuit(core=core, registers=registers, num_primary_inputs=0, bad_output=0)


def _two_bit_counter_design(bad_on=3):
    """Two-register counter with enable input; bad = counter == bad_on."""
    core = Circuit(name="counter2")
    b0, b1 = core.add_input(), core.add_input()
    enable = core.add_input()
    n0 = core.xor(b0, enable)
    carry = core.and_(b0, enable)
    n1 = core.xor(b1, carry)
    bits = [b0 if (bad_on >> 0) & 1 else core.not_(b0),
            b1 if (bad_on >> 1) & 1 else core.not_(b1)]
    core.mark_output(core.and_(*bits))
    # Register next-state nets come *after* the bad cone; order is free.
    registers = [
        Register(output=b0, next_input=n0),
        Register(output=b1, next_input=n1),
    ]
    return SequentialCircuit(core=core, registers=registers, num_primary_inputs=1, bad_output=0)


class TestSequentialCircuit:
    def test_simulate_cycle_toggle(self):
        design = _toggle_design()
        state = [False]
        seen = []
        for _ in range(4):
            seen.append(state[0])
            state, _ = design.simulate_cycle(state, [])
        assert seen == [False, True, False, True]

    def test_simulate_counter(self):
        design = _two_bit_counter_design()
        state = [False, False]
        values = []
        for _ in range(5):
            values.append(int(state[0]) + 2 * int(state[1]))
            state, _ = design.simulate_cycle(state, [True])
        assert values == [0, 1, 2, 3, 0]

    def test_validation_errors(self):
        core = Circuit()
        a = core.add_input()
        core.mark_output(a)
        with pytest.raises(ValueError):
            SequentialCircuit(core=core, registers=[], num_primary_inputs=2)
        with pytest.raises(ValueError):
            SequentialCircuit(
                core=core,
                registers=[Register(output=a, next_input=999)],
                num_primary_inputs=0,
            )
        with pytest.raises(ValueError):
            SequentialCircuit(
                core=core, registers=[], num_primary_inputs=1, bad_output=5
            )


class TestToTransitionSystem:
    def test_toggle_reaches_bad_in_one_step(self):
        system = to_transition_system(_toggle_design())
        outcome = BoundedModelChecker(system).run(max_bound=3)
        assert outcome.property_violated
        assert outcome.counterexample.length == 1

    def test_counter_bmc_depth_matches_value(self):
        system = to_transition_system(_two_bit_counter_design(bad_on=3))
        outcome = BoundedModelChecker(system).run(max_bound=5)
        assert outcome.property_violated
        assert outcome.counterexample.length == 3

    def test_unreachable_bad_proved_by_interpolation(self):
        # bad = counter == 3, but the enable is tied low by construction:
        # feed the counter an AND(x, NOT x) enable so it never moves.
        core = Circuit(name="frozen")
        b0, b1 = core.add_input(), core.add_input()
        x = core.add_input()
        zero = core.and_(x, core.not_(x))
        n0 = core.xor(b0, zero)
        carry = core.and_(b0, zero)
        n1 = core.xor(b1, carry)
        core.mark_output(core.and_(b0, b1))
        design = SequentialCircuit(
            core=core,
            registers=[Register(output=b0, next_input=n0), Register(output=b1, next_input=n1)],
            num_primary_inputs=1,
            bad_output=0,
        )
        system = to_transition_system(design)
        result = InterpolationModelChecker(system).prove(max_bound=4)
        assert result.status == "proved"

    def test_bad_cone_on_primary_input_rejected(self):
        core = Circuit()
        state = core.add_input()
        primary = core.add_input()
        core.mark_output(core.and_(state, primary))
        design = SequentialCircuit(
            core=core,
            registers=[Register(output=state, next_input=state)],
            num_primary_inputs=1,
            bad_output=0,
        )
        with pytest.raises(ValueError):
            to_transition_system(design)

    def test_missing_bad_output_rejected(self):
        design = _toggle_design()
        design.bad_output = None
        with pytest.raises(ValueError):
            to_transition_system(design)
