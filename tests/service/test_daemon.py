"""The spool daemon: ingest protocol, run modes, crash-restart replay."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.daemon import (
    CheckDaemon,
    iter_results,
    read_queue_status,
    spool_layout,
    submit_job,
)
from repro.service.jobs import JobState, JobStore
from repro.service.metrics import load_snapshot


def test_submit_job_writes_into_incoming(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    spool = tmp_path / "spool"
    path = submit_job(spool, cnf, ascii_path, {"method": "bf"})
    assert path.parent == spool_layout(spool).incoming
    payload = json.loads(path.read_text())
    assert Path(payload["formula"]).is_absolute()
    assert payload["options"] == {"method": "bf"}


def test_submit_job_refuses_missing_artifacts(tmp_path):
    with pytest.raises(FileNotFoundError):
        submit_job(tmp_path / "spool", "/nonexistent.cnf", "/nonexistent.trace")


def test_run_once_drains_and_snapshots(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    spool = tmp_path / "spool"
    submit_job(spool, cnf, ascii_path, {"method": "bf"})
    submit_job(spool, cnf, ascii_path, {"method": "df"})
    assert CheckDaemon(spool, num_workers=2).run_once() == 0

    layout = spool_layout(spool)
    assert not list(layout.incoming.glob("*.json"))  # all picked up
    status = read_queue_status(spool)
    assert status["counts"]["DONE"] == 2 and status["queue_depth"] == 0
    snapshot = load_snapshot(str(layout.metrics_path))
    assert snapshot["counters"]["jobs.done"] == 2
    results = list(iter_results(spool))
    assert len(results) == 2
    for job, payload in results:
        assert job.state is JobState.DONE
        assert payload["report"]["verified"] is True


def test_ingest_dedups_identical_submissions(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    spool = tmp_path / "spool"
    for _ in range(3):
        submit_job(spool, cnf, ascii_path, {"method": "bf"})
    submit_job(spool, cnf, ascii_path, {"method": "df"})
    daemon = CheckDaemon(spool)
    assert daemon.ingest() == 4  # four files picked up ...
    assert len(daemon.store.jobs()) == 2  # ... but identical work queued once
    daemon.scheduler.drain()
    daemon.store.close()


def test_ingest_rejects_malformed_job_files(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    spool = tmp_path / "spool"
    layout = spool_layout(spool).ensure()
    (layout.incoming / "job-torn.json").write_text("{not json")
    (layout.incoming / "job-incomplete.json").write_text('{"formula": "/x.cnf"}')
    submit_job(spool, cnf, ascii_path, {"method": "bf"})
    daemon = CheckDaemon(spool)
    assert daemon.ingest() == 1
    assert daemon.metrics.counter("spool.rejected").value == 2
    rejected = sorted(p.name for p in layout.accepted.glob("*.rejected"))
    assert rejected == ["job-incomplete.rejected", "job-torn.rejected"]
    daemon.scheduler.drain()
    daemon.store.close()


def test_run_forever_exits_when_idle(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    spool = tmp_path / "spool"
    submit_job(spool, cnf, ascii_path, {"method": "bf"})
    daemon = CheckDaemon(spool, poll_interval=0.02)
    assert daemon.run_forever(max_idle_s=0.2) == 0
    assert read_queue_status(spool)["counts"]["DONE"] == 1


def test_read_queue_status_on_empty_spool(tmp_path):
    status = read_queue_status(tmp_path / "never-created")
    assert status == {"jobs": 0, "counts": {}, "queue_depth": 0, "incoming": 0}


@pytest.fixture(scope="module")
def slow_artifacts(tmp_path_factory):
    """php(8,7): checks take long enough to SIGKILL a daemon mid-batch."""
    from repro.cnf.dimacs import write_dimacs_file
    from repro.solver import Solver, SolverConfig
    from repro.trace import AsciiTraceWriter

    from tests.conftest import pigeonhole

    formula = pigeonhole(8, 7)
    root = tmp_path_factory.mktemp("crash-artifacts")
    cnf = root / "php87.cnf"
    write_dimacs_file(formula, cnf)
    trace = root / "php87.trace"
    writer = AsciiTraceWriter(trace)
    assert Solver(formula, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    writer.close()
    return str(cnf), str(trace)


def _journal_terminal_events(journal: Path) -> dict[str, int]:
    """How many DONE/FAILED transitions each job has in the raw journal."""
    terminal: dict[str, int] = {}
    for line in journal.read_text().splitlines():
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if event.get("event") == "state" and event.get("state") in ("DONE", "FAILED"):
            terminal[event["job_id"]] = terminal.get(event["job_id"], 0) + 1
    return terminal


def test_sigkill_restart_reaches_all_terminal_without_duplicated_work(
    slow_artifacts, tmp_path
):
    """The acceptance-criteria crash drill: SIGKILL a serving daemon
    mid-batch, restart with --once, and every submitted job must reach a
    terminal state with no completed work re-run (exactly one terminal
    journal event per job)."""
    cnf, trace = slow_artifacts
    spool = tmp_path / "spool"
    # Distinct timeouts make distinct content keys: a real batch, no dedup.
    for timeout in (100.0, 200.0, 300.0, 400.0, 500.0, 600.0):
        submit_job(spool, cnf, trace, {"method": "df", "timeout": timeout})

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(spool),
            "--workers", "2", "--no-cache", "--poll-interval", "0.02",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    journal = spool_layout(spool).journal
    try:
        # Wait for the daemon to have work in flight, then kill it cold.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if journal.exists() and '"state":"RUNNING"' in journal.read_text():
                break
            time.sleep(0.01)
        else:
            pytest.fail("daemon never started running a job")
    finally:
        daemon.kill()  # SIGKILL: no cleanup, no journal flush
        daemon.wait(timeout=10)

    before = _journal_terminal_events(journal)
    assert all(count == 1 for count in before.values())

    # Restart: replay must requeue the orphans and finish the batch.
    restarted = CheckDaemon(spool, num_workers=2, use_cache=False)
    assert restarted.run_once() == 0

    store = JobStore(journal, readonly=True)
    jobs = store.jobs()
    assert len(jobs) == 6
    assert all(job.state is JobState.DONE for job in jobs)
    after = _journal_terminal_events(journal)
    assert len(after) == 6
    # No duplicated work: nothing DONE before the crash was re-finished.
    assert all(count == 1 for count in after.values())
    for job_id, count in before.items():
        assert after[job_id] == count


def test_sigkill_restart_with_interrupted_checkpointless_job(artifacts, tmp_path):
    """Even a spool whose daemon died before claiming anything recovers:
    --once after the crash drains every pending job."""
    _, cnf, ascii_path, _ = artifacts
    spool = tmp_path / "spool"
    submit_job(spool, cnf, ascii_path, {"method": "bf"})
    # Simulate "daemon died between ingest and claim": journal has the
    # submit but no transitions.
    daemon = CheckDaemon(spool)
    daemon.ingest()
    daemon.store.close()  # no drain — the "crash"

    restarted = CheckDaemon(spool)
    assert restarted.run_once() == 0
    assert read_queue_status(spool)["counts"]["DONE"] == 1


# -- event-driven submit path --------------------------------------------------


def test_socket_wakeup_beats_the_poll_interval(artifacts, tmp_path):
    """A submit pings the daemon's control socket: verdict latency is
    bounded by the check, not by a (deliberately huge) poll interval."""
    import threading

    from repro.service.daemon import _ping_daemons

    _, cnf, ascii_path, _ = artifacts
    spool = tmp_path / "spool"
    daemon = CheckDaemon(spool, num_workers=1, poll_interval=30.0)
    thread = threading.Thread(
        target=daemon.run_forever, kwargs={"max_idle_s": 0.2}, daemon=True
    )
    thread.start()
    try:
        layout = spool_layout(spool)
        deadline = time.monotonic() + 20
        while not layout.control_sockets() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert layout.control_sockets(), "daemon never opened its wakeup socket"

        started = time.monotonic()
        submit_job(spool, cnf, ascii_path, {"method": "bf"})
        done = False
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if read_queue_status(spool)["counts"].get("DONE") == 1:
                done = True
                break
            time.sleep(0.05)
        elapsed = time.monotonic() - started
        assert done, "job not completed"
        assert elapsed < 20.0 < daemon.poll_interval  # woke by ping, not poll
    finally:
        # The loop blocks up to poll_interval between idle checks; keep
        # pinging so it re-evaluates max_idle_s and exits.
        deadline = time.monotonic() + 30
        while thread.is_alive() and time.monotonic() < deadline:
            _ping_daemons(spool_layout(spool))
            time.sleep(0.1)
        thread.join(timeout=10)
    assert not thread.is_alive()
    assert daemon.metrics.counter("daemon.wakeups").value >= 1
    assert not spool_layout(spool).control_sockets()  # socket cleaned up


def test_idle_daemon_throttles_metrics_snapshots(tmp_path):
    """Regression: run_forever used to rewrite SERVICE_metrics.json every
    poll iteration (~5 renames/s at the default interval) with nothing to
    report. Idle iterations must not write at all."""
    spool = tmp_path / "spool"
    daemon = CheckDaemon(spool, num_workers=1, poll_interval=0.02,
                         metrics_interval=60.0)
    writes = []
    original = daemon.snapshot_metrics

    def counting_snapshot():
        writes.append(time.monotonic())
        original()

    daemon.snapshot_metrics = counting_snapshot
    assert daemon.run_forever(max_idle_s=0.4) == 0
    # ~20 idle iterations ran; only the initial state write and the final
    # shutdown snapshot are allowed.
    assert len(writes) <= 2, writes


def test_ingest_skips_files_for_unowned_shards(artifacts, tmp_path):
    """An instance owning shard 0 leaves shard-1 files for their owner."""
    _, cnf, ascii_path, _ = artifacts
    spool = tmp_path / "spool"
    for i in range(8):
        submit_job(spool, cnf, ascii_path, {"method": "bf", "timeout": 500 + i})
    daemon0 = CheckDaemon(spool, num_shards=2, owned_shards=[0])
    ingested = daemon0.ingest()
    leftover = len(list(spool_layout(spool).incoming.glob("*.json")))
    assert ingested + leftover == 8
    assert daemon0.metrics.counter("spool.other_shard").value == leftover
    daemon0.store.close()

    daemon1 = CheckDaemon(spool, num_shards=2, owned_shards=[1])
    assert daemon1.ingest() == leftover
    assert not list(spool_layout(spool).incoming.glob("*.json"))
    daemon1.store.close()
