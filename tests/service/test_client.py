"""ServiceClient: the cache-aware wrapper over supervised_check."""

from repro.cnf import parse_dimacs_file
from repro.service.cache import VerdictCache
from repro.service.client import ServiceClient


def make_client(tmp_path, **kwargs) -> ServiceClient:
    return ServiceClient(cache=VerdictCache(tmp_path / "cache"), **kwargs)


def test_miss_then_hit(artifacts, tmp_path):
    formula, _, ascii_path, _ = artifacts
    client = make_client(tmp_path)
    first = client.check(formula, ascii_path, method="bf")
    assert first.verified and not first.from_cache
    second = client.check(formula, ascii_path, method="bf")
    assert second.verified and second.from_cache
    assert client.metrics.counter("cache.hits").value == 1
    assert client.metrics.counter("cache.stores").value == 1


def test_path_and_object_formula_share_cache_lines(artifacts, tmp_path):
    formula, cnf_path, ascii_path, _ = artifacts
    client = make_client(tmp_path)
    client.check(cnf_path, ascii_path, method="bf")
    via_object = client.check(formula, ascii_path, method="bf")
    assert via_object.from_cache


def test_different_options_are_different_cache_lines(artifacts, tmp_path):
    formula, _, ascii_path, _ = artifacts
    client = make_client(tmp_path)
    client.check(formula, ascii_path, method="bf")
    other = client.check(formula, ascii_path, method="df")
    assert not other.from_cache


def test_use_cache_false_never_touches_cache(artifacts, tmp_path):
    formula, _, ascii_path, _ = artifacts
    client = make_client(tmp_path, use_cache=False)
    client.check(formula, ascii_path, method="bf")
    report = client.check(formula, ascii_path, method="bf")
    assert not report.from_cache
    assert len(client.cache) == 0


def test_refresh_overwrites_instead_of_reading(artifacts, tmp_path):
    formula, _, ascii_path, _ = artifacts
    client = make_client(tmp_path)
    client.check(formula, ascii_path, method="bf")
    refresher = ServiceClient(cache=client.cache, refresh=True)
    report = refresher.check(formula, ascii_path, method="bf")
    assert not report.from_cache  # recomputed despite the warm entry
    assert refresher.metrics.counter("cache.stores").value >= 2


def test_resource_failures_are_never_cached(artifacts, tmp_path):
    """A memory-out depends on the budget of the moment, not the proof."""
    formula, _, ascii_path, _ = artifacts
    client = make_client(tmp_path)
    report = client.check(
        formula, ascii_path, method="df", policy="strict", memory_limit=1
    )
    assert not report.verified
    assert len(client.cache) == 0
    again = client.check(
        formula, ascii_path, method="df", policy="strict", memory_limit=1
    )
    assert not again.from_cache


def test_proof_verdicts_about_bad_traces_are_cached(second_artifacts, artifacts, tmp_path):
    """Cross-validating the wrong trace is a verdict, and verdicts cache."""
    formula, _, _, _ = artifacts
    _, _, wrong_trace = second_artifacts
    client = make_client(tmp_path)
    report = client.check(formula, wrong_trace, method="bf", policy="strict")
    assert not report.verified
    assert len(client.cache) == 1
    again = client.check(formula, wrong_trace, method="bf", policy="strict")
    assert again.from_cache and not again.verified


def test_cached_report_carries_fingerprint(artifacts, tmp_path):
    formula, _, ascii_path, _ = artifacts
    client = make_client(tmp_path)
    fresh = client.check(formula, ascii_path, method="bf")
    assert fresh.fingerprint is not None and "key" in fresh.fingerprint
    warm = client.check(formula, ascii_path, method="bf")
    assert warm.fingerprint["key"] == fresh.fingerprint["key"]


def test_prune_is_a_distinct_cache_line_and_is_metered(artifacts, tmp_path):
    formula, _, ascii_path, _ = artifacts
    client = make_client(tmp_path)
    plain = client.check(formula, ascii_path, method="bf")
    assert plain.prune is None
    pruned = client.check(formula, ascii_path, method="bf", prune=True)
    assert not pruned.from_cache  # prune=True must not alias the plain line
    assert pruned.verified and pruned.prune is not None
    assert client.metrics.counter("check.pruned").value == 1
    assert (
        client.metrics.counter("check.pruned_lemmas").value
        == pruned.prune["skipped"]
    )


def test_cached_verdict_remembers_it_was_pruned(artifacts, tmp_path):
    formula, _, ascii_path, _ = artifacts
    client = make_client(tmp_path)
    fresh = client.check(formula, ascii_path, method="bf", prune=True)
    warm = client.check(formula, ascii_path, method="bf", prune=True)
    assert warm.from_cache
    assert warm.prune == fresh.prune


def test_clientless_cache_still_checks(artifacts):
    formula, _, ascii_path, _ = artifacts
    client = ServiceClient(cache=None)
    report = client.check(formula, ascii_path, method="bf")
    assert report.verified and not report.from_cache
