"""The pre-forked pool: crash replacement, warm caches, sharded scale-out."""

import json
import subprocess
import sys
import time

import pytest

from repro.service.cache import VerdictCache
from repro.service.client import ServiceClient
from repro.service.daemon import read_queue_status, spool_layout, submit_job
from repro.service.jobs import JobState, JobStore, ShardedJobStore, shard_of
from repro.service.pool import FAULT_FILE_ENV, ThreadWorkerPool, WorkerPool
from repro.service.scheduler import Scheduler


def make_scheduler(tmp_path, num_workers=2, mode="process") -> Scheduler:
    store = JobStore(tmp_path / "journal.jsonl")
    client = ServiceClient(cache=VerdictCache(tmp_path / "cache"))
    return Scheduler(store, client, num_workers=num_workers, mode=mode)


# -- basic pool mechanics ------------------------------------------------------


def test_pool_runs_tasks_and_reports_results(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    results = []
    pool = WorkerPool(2, results.append)
    pool.start()
    try:
        assert pool.idle_workers == 2
        assert pool.submit({"job_id": "j1", "formula": cnf, "trace": ascii_path,
                            "options": {"method": "bf"}})
        deadline = time.monotonic() + 60
        while not results and time.monotonic() < deadline:
            time.sleep(0.02)
    finally:
        pool.stop()
    assert results and results[0]["ok"]
    assert results[0]["report"]["verified"] is True


def test_pool_submit_backpressure(artifacts, tmp_path):
    """A full pool refuses tasks instead of queueing them invisibly."""
    _, cnf, ascii_path, _ = artifacts
    results = []
    pool = WorkerPool(1, results.append)
    pool.start()
    try:
        task = {"job_id": "j1", "formula": cnf, "trace": ascii_path,
                "options": {"method": "bf"}}
        assert pool.submit(task)
        assert not pool.has_idle()
        assert not pool.submit(dict(task, job_id="j2"))
    finally:
        pool.stop()


def test_worker_sigkill_mid_job_is_retried_on_replacement(artifacts, tmp_path, monkeypatch):
    """A SIGKILLed worker is replaced and its in-flight job still completes."""
    _, cnf, ascii_path, _ = artifacts
    fault = tmp_path / "fault"
    fault.write_text("die once\n")
    monkeypatch.setenv(FAULT_FILE_ENV, str(fault))  # workers inherit the env

    scheduler = make_scheduler(tmp_path, num_workers=2)
    jobs = [
        scheduler.store.submit(cnf, ascii_path, {"method": "bf", "timeout": 100 + i})
        for i in range(3)
    ]
    scheduler.drain()
    assert not fault.exists()  # exactly one worker took the bullet
    assert scheduler.store.all_terminal
    for job in jobs:
        assert job.state is JobState.DONE, job.result
        assert job.result["verified"] is True
    assert scheduler.metrics.counter("pool.worker_crashes").value >= 1
    assert scheduler.metrics.counter("pool.workers_replaced").value >= 1
    assert scheduler.metrics.counter("pool.task_retries").value >= 1
    scheduler.store.close()


def test_crash_past_attempt_budget_quarantines_the_job(artifacts, tmp_path, monkeypatch):
    """A crash with no budget left dead-letters the job — not a hang, not a
    crash loop — and an operator requeue gives it a fresh budget."""
    _, cnf, ascii_path, _ = artifacts
    fault = tmp_path / "fault"
    fault.write_text("die once\n")
    monkeypatch.setenv(FAULT_FILE_ENV, str(fault))
    store = JobStore(tmp_path / "journal.jsonl", max_job_attempts=1,
                     dead_letter_dir=tmp_path / "dead")
    client = ServiceClient(cache=VerdictCache(tmp_path / "cache"))
    scheduler = Scheduler(store, client, num_workers=1, max_task_retries=0)
    job = store.submit(cnf, ascii_path, {"method": "bf"})
    scheduler.drain()
    assert job.state is JobState.DEAD
    assert "crash" in job.result["error"]
    assert scheduler.metrics.counter("jobs.worker_crash_failures").value == 1
    assert scheduler.metrics.counter("jobs.parked").value == 1
    assert [j.job_id for j in store.dead_jobs()] == [job.job_id]
    assert (tmp_path / "dead" / f"{job.job_id}.json").is_file()
    # Operator requeue: budget resets, the (consumed) fault stays quiet,
    # and the job completes on its fresh attempt.
    assert store.requeue(job.job_id) is job
    assert job.state is JobState.PENDING and job.attempts == 0
    assert not (tmp_path / "dead" / f"{job.job_id}.json").exists()
    scheduler.drain()
    assert job.state is JobState.DONE and job.result["verified"] is True
    store.close()


# -- warm caches ---------------------------------------------------------------


@pytest.mark.parametrize("mode", ["process", "thread"])
def test_warm_formula_cache_reused_across_jobs(artifacts, tmp_path, mode):
    """N jobs on one formula parse the DIMACS once per worker, visibly."""
    _, cnf, ascii_path, _ = artifacts
    scheduler = make_scheduler(tmp_path / mode, num_workers=1, mode=mode)
    for i in range(4):  # distinct timeouts -> distinct cache keys, no dedup
        scheduler.store.submit(cnf, ascii_path, {"method": "bf", "timeout": 200 + i})
    scheduler.drain()
    assert scheduler.store.all_terminal
    assert all(j.result["verified"] for j in scheduler.store.jobs())
    counters = scheduler.metrics
    assert counters.counter("pool.formula_misses").value == 1
    assert counters.counter("pool.formula_hits").value == 3
    assert counters.counter("pool.trace_hits").value == 3
    assert counters.counter("pool.store_reuses").value == 3
    scheduler.store.close()


def test_thread_pool_interface_parity(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    results = []
    pool = ThreadWorkerPool(2, results.append)
    pool.start()
    try:
        assert pool.has_idle()
        assert pool.submit({"job_id": "j1", "formula": cnf, "trace": ascii_path,
                            "options": {"method": "bf"}})
        deadline = time.monotonic() + 60
        while not results and time.monotonic() < deadline:
            time.sleep(0.02)
    finally:
        pool.stop()
    assert results and results[0]["ok"]


# -- sharded scale-out ---------------------------------------------------------


def test_two_instances_drain_disjoint_shards(artifacts, tmp_path):
    """Two `serve --once` processes owning one shard each drain one spool:
    every job runs exactly once, in exactly one instance's journal."""
    _, cnf, ascii_path, _ = artifacts
    spool = tmp_path / "spool"
    submitted = 6
    for i in range(submitted):
        submit_job(spool, cnf, ascii_path, {"method": "bf", "timeout": 300 + i})

    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(spool),
             "--once", "--workers", "1", "--shards", "2", "--own", str(own)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for own in (0, 1)
    ]
    for proc in procs:
        assert proc.wait(timeout=300) == 0

    status = read_queue_status(spool)
    assert status["shards"] == 2
    assert status["counts"]["DONE"] == submitted
    assert status["queue_depth"] == 0 and status["incoming"] == 0

    # Exactly-once: every journal entry ran once, and the two shards
    # partition the dedup keys with no overlap.
    store = ShardedJobStore(spool, num_shards=2, readonly=True)
    seen_keys: dict[str, str] = {}
    for job in store.jobs():
        assert job.state is JobState.DONE
        assert job.attempts == 1
        assert job.dedup_key not in seen_keys
        seen_keys[job.dedup_key] = job.job_id
        assert job.job_id.startswith(("job-s0-", "job-s1-"))
        assert shard_of(job.dedup_key, 2) == int(job.job_id.split("-")[1][1:])
    assert len(seen_keys) == submitted


def test_sharded_store_routes_and_rejects_unowned(tmp_path):
    store = ShardedJobStore(tmp_path, num_shards=4, owned=[1, 3])
    owned_key = f"{1:016x}" + "0" * 48  # routes to shard 1
    unowned_key = f"{2:016x}" + "0" * 48  # routes to shard 2
    assert shard_of(owned_key, 4) == 1 and shard_of(unowned_key, 4) == 2
    job = store.submit("/a.cnf", "/a.trace", {}, dedup_key=owned_key)
    assert store.get(job.job_id) is job
    with pytest.raises(ValueError, match="does not own"):
        store.submit("/a.cnf", "/a.trace", {}, dedup_key=unowned_key)
    store.close()


def test_sharded_store_replays_both_journals(tmp_path):
    with ShardedJobStore(tmp_path, num_shards=2) as store:
        keys = [f"{i:016x}" + "0" * 48 for i in range(8)]
        for key in keys:
            store.submit("/a.cnf", "/a.trace", {"i": key}, dedup_key=key)
        claimed = store.claim("w")
        store.finish(claimed, {"verified": True})
    reopened = ShardedJobStore(tmp_path, num_shards=2)
    assert len(reopened.jobs()) == 8
    counts = reopened.counts()
    assert counts["DONE"] == 1 and counts["PENDING"] == 7
    # Serial counters resume per shard: no ID collision on new submits.
    extra = reopened.submit("/b.cnf", "/b.trace", {}, dedup_key="f" * 64)
    assert extra.job_id not in {j.job_id for j in reopened.jobs() if j is not extra}
    reopened.close()


def test_single_shard_store_keeps_classic_journal(tmp_path):
    with ShardedJobStore(tmp_path, num_shards=1) as store:
        job = store.submit("/a.cnf", "/a.trace", {})
        assert job.job_id == "job-000001"  # no shard prefix
    assert (tmp_path / "journal.jsonl").is_file()
    events = [json.loads(line) for line in
              (tmp_path / "journal.jsonl").read_text().splitlines()]
    assert events[0]["event"] == "submit"
