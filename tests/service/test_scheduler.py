"""The dispatcher: drain semantics, DONE/FAILED, result persistence."""

import json

import pytest

from repro.service.cache import VerdictCache
from repro.service.client import ServiceClient
from repro.service.jobs import JobState, JobStore
from repro.service.scheduler import Scheduler


def make_scheduler(tmp_path, num_workers=2, results=False) -> Scheduler:
    store = JobStore(tmp_path / "journal.jsonl")
    client = ServiceClient(cache=VerdictCache(tmp_path / "cache"))
    return Scheduler(
        store,
        client,
        num_workers=num_workers,
        results_dir=(tmp_path / "results") if results else None,
    )


def test_drain_completes_every_job(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    scheduler = make_scheduler(tmp_path)
    for method in ("df", "bf", "hybrid"):
        scheduler.store.submit(cnf, ascii_path, {"method": method})
    scheduler.drain()
    assert scheduler.store.all_terminal
    for job in scheduler.store.jobs():
        assert job.state is JobState.DONE
        assert job.result["verified"] is True
    assert scheduler.metrics.counter("jobs.done").value == 3
    scheduler.store.close()


def test_refuted_proof_is_done_not_failed(artifacts, second_artifacts, tmp_path):
    """A checker catching a bad proof is the service *working*."""
    _, cnf, _, _ = artifacts
    _, _, wrong_trace = second_artifacts
    scheduler = make_scheduler(tmp_path)
    job = scheduler.store.submit(cnf, wrong_trace, {"method": "bf", "policy": "strict"})
    scheduler.drain()
    assert job.state is JobState.DONE
    assert job.result["verified"] is False
    assert "failure_kind" in job.result
    scheduler.store.close()


def test_missing_artifact_fails_the_job(tmp_path):
    scheduler = make_scheduler(tmp_path)
    job = scheduler.store.submit("/nonexistent.cnf", "/nonexistent.trace", {"method": "bf"})
    scheduler.drain()
    assert job.state is JobState.FAILED
    assert "error" in job.result
    assert scheduler.metrics.counter("jobs.failed").value == 1
    scheduler.store.close()


def test_unknown_job_option_fails_fast(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    scheduler = make_scheduler(tmp_path)
    job = scheduler.store.submit(cnf, ascii_path, {"method": "bf", "bogus_knob": 1})
    scheduler.drain()
    assert job.state is JobState.FAILED
    assert "bogus_knob" in job.result["error"]
    scheduler.store.close()


def test_one_bad_job_does_not_poison_the_batch(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    scheduler = make_scheduler(tmp_path)
    bad = scheduler.store.submit("/nonexistent.cnf", ascii_path, {"method": "bf"})
    good = scheduler.store.submit(cnf, ascii_path, {"method": "bf"})
    scheduler.drain()
    assert bad.state is JobState.FAILED
    assert good.state is JobState.DONE
    scheduler.store.close()


def test_result_files_are_full_reports(artifacts, tmp_path):
    from repro.checker.report import REPORT_SCHEMA_VERSION

    _, cnf, ascii_path, _ = artifacts
    scheduler = make_scheduler(tmp_path, results=True)
    job = scheduler.store.submit(cnf, ascii_path, {"method": "bf"})
    scheduler.drain()
    path = job.result["result_path"]
    payload = json.loads(open(path).read())
    assert payload["job_id"] == job.job_id
    assert payload["schema_version"] == REPORT_SCHEMA_VERSION
    assert payload["report"]["verified"] is True
    assert payload["report"]["schema_version"] == REPORT_SCHEMA_VERSION
    scheduler.store.close()


def test_second_batch_is_served_from_cache(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    scheduler = make_scheduler(tmp_path)
    scheduler.store.submit(cnf, ascii_path, {"method": "bf"})
    scheduler.drain()
    scheduler.store.submit(cnf, ascii_path, {"method": "bf", "timeout": None})
    scheduler.drain()
    assert scheduler.metrics.counter("jobs.served_from_cache").value == 1
    scheduler.store.close()


def test_multiple_workers_share_one_queue(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    scheduler = make_scheduler(tmp_path, num_workers=4)
    for timeout in (10.0, 20.0, 30.0, 40.0, 50.0, 60.0):
        scheduler.store.submit(cnf, ascii_path, {"method": "bf", "timeout": timeout})
    scheduler.drain()
    assert scheduler.store.all_terminal
    assert scheduler.metrics.counter("jobs.done").value == 6
    scheduler.store.close()


def test_prune_option_is_accepted_and_reported(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    scheduler = make_scheduler(tmp_path)
    plain = scheduler.store.submit(cnf, ascii_path, {"method": "bf"})
    pruned = scheduler.store.submit(cnf, ascii_path, {"method": "bf", "prune": True})
    scheduler.drain()
    assert plain.state is JobState.DONE and "pruned" not in plain.result
    assert pruned.state is JobState.DONE
    assert pruned.result["verified"] is True
    assert pruned.result["pruned"] is True
    scheduler.store.close()


def test_scheduler_rejects_zero_workers(tmp_path):
    store = JobStore(tmp_path / "journal.jsonl")
    with pytest.raises(ValueError):
        Scheduler(store, ServiceClient(), num_workers=0)
    store.close()


def test_drain_survives_slow_claim_window(artifacts, tmp_path):
    """Regression: drain() once raced the claim — a job moved PENDING ->
    RUNNING (queue depth 0) before the busy count reflected it, so drain
    could observe "empty queue, nobody busy" and return with the job still
    in flight. The claim and the in-flight increment are now one atomic
    step; widening the claim window must not break drain."""
    import time as _time

    from repro.service.jobs import JobStore as _JobStore

    class SlowClaimStore(_JobStore):
        def claim(self, worker):
            job = super().claim(worker)
            if job is not None:
                _time.sleep(0.25)  # hold the claimed-but-unfinished window open
            return job

    store = SlowClaimStore(tmp_path / "journal.jsonl")
    client = ServiceClient(cache=VerdictCache(tmp_path / "cache"))
    scheduler = Scheduler(store, client, num_workers=2)
    _, cnf, ascii_path, _ = artifacts
    jobs = [store.submit(cnf, ascii_path, {"method": "bf", "timeout": 400 + i})
            for i in range(2)]
    scheduler.drain()
    # drain() returning with any claimed job not yet terminal is the race.
    for job in jobs:
        assert job.state is JobState.DONE, job.state
    assert store.all_terminal
    store.close()


def test_stop_with_unsubmittable_task_does_not_hang(artifacts, tmp_path):
    """Stopping while a claimed job never reached a worker must release it
    for journal-replay requeue instead of wedging stop()."""
    _, cnf, ascii_path, _ = artifacts
    scheduler = make_scheduler(tmp_path)
    scheduler.start()
    scheduler.stop()  # no jobs at all: the trivial case returns immediately
    assert scheduler.store.all_terminal
    scheduler.store.close()
