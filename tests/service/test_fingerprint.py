"""Content addressing: same content ⇒ same key, any difference ⇒ different."""

import shutil

from repro.cnf import CnfFormula
from repro.service.fingerprint import (
    fingerprint_check,
    fingerprint_formula,
    fingerprint_options,
    fingerprint_trace,
    job_key,
)
from repro.trace import load_trace, sha256_file, trace_content_hash


def test_formula_fingerprint_is_content_stable():
    a = CnfFormula(3, [[1, 2], [-1, 3]])
    b = CnfFormula(3, [[1, 2], [-1, 3]])
    assert fingerprint_formula(a) == fingerprint_formula(b)


def test_formula_fingerprint_sees_clause_order():
    # Clause IDs are positional, so swapped clauses are a different check.
    a = CnfFormula(3, [[1, 2], [-1, 3]])
    b = CnfFormula(3, [[-1, 3], [1, 2]])
    assert fingerprint_formula(a) != fingerprint_formula(b)


def test_formula_fingerprint_sees_dimensions():
    a = CnfFormula(3, [[1, 2]])
    b = CnfFormula(4, [[1, 2]])
    assert fingerprint_formula(a) != fingerprint_formula(b)


def test_trace_file_hash_matches_bytes(artifacts, tmp_path):
    _, _, ascii_path, _ = artifacts
    copy = tmp_path / "copy.trace"
    shutil.copy(ascii_path, copy)
    assert trace_content_hash(ascii_path) == trace_content_hash(copy)
    assert trace_content_hash(ascii_path) == sha256_file(ascii_path)


def test_trace_file_hash_sees_any_byte_change(artifacts, tmp_path):
    _, _, ascii_path, _ = artifacts
    mutated = tmp_path / "mutated.trace"
    data = bytearray(open(ascii_path, "rb").read())
    data[len(data) // 2] ^= 0x01
    mutated.write_bytes(bytes(data))
    assert trace_content_hash(ascii_path) != trace_content_hash(mutated)


def test_trace_object_hash_is_canonical(artifacts):
    _, _, ascii_path, _ = artifacts
    first = load_trace(ascii_path)
    second = load_trace(ascii_path)
    assert trace_content_hash(first) == trace_content_hash(second)


def test_ascii_and_binary_encodings_are_distinct_artifacts(artifacts):
    # Same proof, different bytes: deliberately different fingerprints.
    _, _, ascii_path, binary_path = artifacts
    assert fingerprint_trace(ascii_path) != fingerprint_trace(binary_path)


def test_options_fingerprint_ignores_non_verdict_options():
    base = fingerprint_options({"method": "bf"})
    assert fingerprint_options({"method": "bf", "checkpoint_path": "/x"}) == base
    assert fingerprint_options({"method": "bf", "timeout": None}) == base
    assert fingerprint_options({"method": "df"}) != base
    assert fingerprint_options({"method": "bf", "memory_limit": 100}) != base


def test_options_fingerprint_separates_pruned_from_unpruned():
    base = fingerprint_options({"method": "bf"})
    assert fingerprint_options({"method": "bf", "prune": True}) != base


def test_job_key_depends_on_every_component():
    key = job_key("a", "b", "c")
    assert job_key("x", "b", "c") != key
    assert job_key("a", "x", "c") != key
    assert job_key("a", "b", "x") != key


def test_fingerprint_check_from_paths(artifacts):
    formula, cnf, ascii_path, _ = artifacts
    by_path = fingerprint_check(cnf, ascii_path, {"method": "bf"})
    assert set(by_path) == {"formula_sha256", "trace_sha256", "options_sha256", "key"}
    by_object = fingerprint_check(formula, ascii_path, {"method": "bf"})
    # Path mode hashes the DIMACS bytes, object mode the canonical clauses:
    # same trace/options digests, same determinism within each mode.
    assert by_path["trace_sha256"] == by_object["trace_sha256"]
    assert by_path["options_sha256"] == by_object["options_sha256"]
    assert fingerprint_check(cnf, ascii_path, {"method": "bf"}) == by_path
