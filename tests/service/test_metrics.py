"""The dependency-free metrics layer."""

import threading

import pytest

from repro.service.metrics import (
    Histogram,
    MetricsRegistry,
    load_snapshot,
    render_snapshot,
)


def test_counter_monotonic():
    registry = MetricsRegistry()
    registry.inc("cache.hits")
    registry.inc("cache.hits", 3)
    assert registry.counter("cache.hits").value == 4
    with pytest.raises(ValueError):
        registry.counter("cache.hits").inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    registry.set_gauge("queue.depth", 5)
    registry.gauge("queue.depth").add(-2)
    assert registry.gauge("queue.depth").value == 3


def test_histogram_bucketing():
    histogram = Histogram(bounds=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        histogram.observe(value)
    data = histogram.to_dict()
    assert data["count"] == 4
    assert data["buckets"] == {"0.01": 1, "0.1": 1, "1.0": 1, "+Inf": 1}
    assert data["sum"] == pytest.approx(5.555)


def test_histogram_boundary_value_lands_in_its_bucket():
    histogram = Histogram(bounds=(0.1, 1.0))
    histogram.observe(0.1)  # exactly on a bound: counts as <= bound
    assert histogram.to_dict()["buckets"]["0.1"] == 1


def test_instruments_are_singletons_by_name():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h") is registry.histogram("h")


def test_snapshot_write_and_load(tmp_path):
    registry = MetricsRegistry()
    registry.inc("cache.hits", 2)
    registry.set_gauge("queue.depth", 1)
    registry.observe("check.latency_s", 0.25)
    path = tmp_path / "SERVICE_metrics.json"
    registry.write(str(path))
    snapshot = load_snapshot(str(path))
    assert snapshot["counters"] == {"cache.hits": 2}
    assert snapshot["gauges"] == {"queue.depth": 1}
    assert snapshot["histograms"]["check.latency_s"]["count"] == 1
    assert not path.with_suffix(".json.tmp").exists()  # atomic write cleaned up


def test_render_snapshot_mentions_everything():
    registry = MetricsRegistry()
    registry.inc("cache.hits", 7)
    registry.set_gauge("queue.depth", 2)
    registry.observe("check.latency_s", 0.3)
    text = render_snapshot(registry.snapshot())
    assert "cache.hits" in text and "7" in text
    assert "queue.depth" in text
    assert "check.latency_s" in text and "count=1" in text
    assert render_snapshot({}) == "(no metrics recorded)"


def test_concurrent_increments_do_not_lose_updates():
    registry = MetricsRegistry()

    def hammer():
        for _ in range(1000):
            registry.inc("n")
            registry.observe("h", 0.01)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter("n").value == 8000
    assert registry.histogram("h").count == 8000
