"""The service CLI verbs, driven in-process: serve/submit/status/results,
plus `repro check --format json` and `repro check --cache`."""

import json

import pytest

from repro.checker.report import REPORT_SCHEMA_VERSION
from repro.cli import check_main, main, results_main, serve_main, status_main, submit_main


def test_check_format_json_is_stable_and_versioned(artifacts, capsys):
    _, cnf, ascii_path, _ = artifacts
    assert check_main([cnf, ascii_path, "--method", "bf", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == REPORT_SCHEMA_VERSION
    assert payload["verified"] is True
    assert payload["method"] == "breadth-first"
    assert payload["from_cache"] is False
    assert "check_time_s" in payload


def test_check_format_json_failure_exit_code(artifacts, second_artifacts, capsys):
    _, cnf, _, _ = artifacts
    _, _, wrong_trace = second_artifacts
    code = check_main([cnf, wrong_trace, "--method", "bf", "--policy", "strict",
                       "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["verified"] is False
    assert "failure" in payload and "kind" in payload["failure"]


def test_check_cache_warm_hit(artifacts, tmp_path, capsys):
    _, cnf, ascii_path, _ = artifacts
    cache = str(tmp_path / "cache")
    assert check_main([cnf, ascii_path, "--method", "bf", "--cache", cache]) == 0
    first = capsys.readouterr().out
    assert "cached" not in first
    assert check_main([cnf, ascii_path, "--method", "bf", "--cache", cache]) == 0
    assert "cached" in capsys.readouterr().out


def test_check_cache_json_reports_cache_state(artifacts, tmp_path, capsys):
    _, cnf, ascii_path, _ = artifacts
    cache = str(tmp_path / "cache")
    check_main([cnf, ascii_path, "--method", "bf", "--cache", cache,
                "--format", "json"])
    assert json.loads(capsys.readouterr().out)["from_cache"] is False
    check_main([cnf, ascii_path, "--method", "bf", "--cache", cache,
                "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["from_cache"] is True
    assert "fingerprint" in payload


def test_check_refresh_requires_cache(artifacts):
    _, cnf, ascii_path, _ = artifacts
    with pytest.raises(SystemExit):
        check_main([cnf, ascii_path, "--refresh"])


def test_check_cache_rejects_checkpoint_combo(artifacts, tmp_path):
    _, cnf, ascii_path, _ = artifacts
    with pytest.raises(SystemExit):
        check_main([cnf, ascii_path, "--cache", str(tmp_path / "c"),
                    "--checkpoint", str(tmp_path / "ckpt")])


def test_submit_serve_status_results_round_trip(artifacts, tmp_path, capsys):
    _, cnf, ascii_path, _ = artifacts
    spool = str(tmp_path / "spool")

    assert submit_main([spool, cnf, ascii_path, "--method", "bf"]) == 0
    assert "submitted" in capsys.readouterr().out

    assert status_main([spool]) == 0
    assert "incoming 1" in capsys.readouterr().out

    assert serve_main([spool, "--once", "--workers", "1"]) == 0
    assert "drained: 1 done" in capsys.readouterr().out

    assert status_main([spool, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "DONE=1" in out
    assert "jobs.done" in out  # the rendered metrics snapshot

    assert results_main([spool]) == 0
    out = capsys.readouterr().out
    assert "job-000001 verified" in out

    assert results_main([spool, "job-000001", "--json"]) == 0
    payloads = json.loads(capsys.readouterr().out)
    assert payloads[0]["report"]["verified"] is True
    assert payloads[0]["report"]["schema_version"] == REPORT_SCHEMA_VERSION


def test_submit_prune_rides_through_the_spool(artifacts, tmp_path, capsys):
    _, cnf, ascii_path, _ = artifacts
    spool = str(tmp_path / "spool")
    assert submit_main([spool, cnf, ascii_path, "--method", "bf", "--prune"]) == 0
    capsys.readouterr()
    assert serve_main([spool, "--once", "--workers", "1"]) == 0
    capsys.readouterr()
    assert results_main([spool, "job-000001", "--json"]) == 0
    payloads = json.loads(capsys.readouterr().out)
    assert payloads[0]["report"]["verified"] is True
    assert payloads[0]["report"]["prune"]["total_learned"] > 0


def test_results_unknown_job_id(tmp_path, capsys):
    spool = str(tmp_path / "spool")
    assert serve_main([spool, "--once"]) == 0
    capsys.readouterr()
    assert results_main([spool, "job-999999"]) == 1
    assert "no terminal job" in capsys.readouterr().err


def test_submit_missing_artifact_errors(tmp_path):
    with pytest.raises(SystemExit):
        submit_main([str(tmp_path / "spool"), "/no.cnf", "/no.trace"])


def test_umbrella_dispatches_service_verbs(artifacts, tmp_path, capsys):
    _, cnf, ascii_path, _ = artifacts
    spool = str(tmp_path / "spool")
    assert main(["submit", spool, cnf, ascii_path, "--method", "bf"]) == 0
    assert main(["serve", spool, "--once"]) == 0
    assert main(["status", spool]) == 0
    assert main(["results", spool]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
