"""Chaos drills: every fault point fired, the service recovers exactly-once.

Each drill arms ``REPRO_FAULT_PLAN`` around one registered fault point,
runs the real service as a subprocess (``repro serve --once``), asserts
the fault genuinely fired (the plan's ``mark=`` file), and then asserts
the recovery invariants: every submitted job reaches DONE with exactly
one DONE record in the journal — no lost jobs, no duplicated verdicts —
and poison jobs land in the dead-letter queue instead of crash-looping.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faults
from repro.service.cache import VerdictCache
from repro.service.client import ServiceClient
from repro.service.daemon import (
    CheckDaemon,
    read_dead_letters,
    read_health,
    request_requeue,
    spool_layout,
    submit_job,
)
from repro.service.jobs import JobState, JobStore

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def clean_plane(monkeypatch):
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    monkeypatch.delenv(faults.LEGACY_CHECK_FAULT_ENV, raising=False)
    monkeypatch.delenv(faults.LEGACY_POOL_FAULT_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def _submit(spool, cnf, trace, count=2, options=None):
    for i in range(count):
        merged = {"method": "bf", "timeout": 500 + i}
        merged.update(options or {})
        submit_job(spool, cnf, trace, merged)


def _serve(spool, *flags, plan=None, timeout=180):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop(faults.PLAN_ENV, None)
    if plan is not None:
        env[faults.PLAN_ENV] = plan
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", str(spool),
         "--once", "--workers", "1", *flags],
        env=env, capture_output=True, text=True, timeout=timeout,
    )


def _repro(*args, timeout=60):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop(faults.PLAN_ENV, None)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *map(str, args)],
        env=env, capture_output=True, text=True, timeout=timeout,
    )


def _journal_lines(spool):
    journal = Path(spool) / "journal.jsonl"
    lines = []
    for raw in journal.read_text(encoding="utf-8").splitlines():
        try:
            lines.append(json.loads(raw))
        except json.JSONDecodeError:
            continue
    return lines


def _assert_exactly_once(spool, expect_done):
    """Every job DONE and verified, with exactly one DONE journal record."""
    with JobStore(Path(spool) / "journal.jsonl", readonly=True) as store:
        jobs = store.jobs()
        assert len(jobs) == expect_done, [j.job_id for j in jobs]
        keys = [j.dedup_key for j in jobs]
        assert len(set(keys)) == len(keys), "duplicated jobs"
        for job in jobs:
            assert job.state is JobState.DONE, (job.job_id, job.state, job.result)
            assert job.result["verified"] is True
    done_records = [
        line["job_id"] for line in _journal_lines(spool)
        if line.get("event") == "state" and line.get("state") == "DONE"
    ]
    assert len(done_records) == len(set(done_records)) == expect_done


# -- the drill: one scenario per fault point × failure mode --------------------

#: (plan-entry sans mark, daemon dies?, job options). ``kill`` inside the
#: daemon process must leave a recoverable spool; ``kill`` inside a worker
#: and every in-process kind must be absorbed within a single run.
DRILLS = [
    pytest.param("point=jobs.journal.append,kind=kill,key=state", True, None,
                 id="journal-append-kill"),
    pytest.param("point=jobs.journal.append,kind=torn,key=state", True, None,
                 id="journal-append-torn"),
    pytest.param("point=daemon.spool.ingest,kind=kill", True, None,
                 id="spool-ingest-kill"),
    pytest.param("point=scheduler.claim,kind=kill", True, None,
                 id="scheduler-claim-kill"),
    pytest.param("point=scheduler.claim,kind=raise", False, None,
                 id="scheduler-claim-raise"),
    pytest.param("point=scheduler.finalize,kind=kill", True, None,
                 id="scheduler-finalize-kill"),
    pytest.param("point=pool.task.dispatch,kind=raise", False, None,
                 id="pool-dispatch-raise"),
    pytest.param("point=pool.result.collect,kind=raise", False, None,
                 id="pool-collect-raise"),
    pytest.param("point=cache.segment.write,kind=torn", True, None,
                 id="cache-segment-torn"),
    pytest.param("point=cache.segment.rename,kind=kill", True, None,
                 id="cache-rename-kill"),
    pytest.param("point=cache.segment.rename,kind=enospc", False, None,
                 id="cache-rename-enospc"),
    pytest.param("point=supervisor.attempt,kind=raise", False,
                 {"method": "df", "policy": "fallback"},
                 id="supervisor-attempt-raise"),
]


@pytest.mark.parametrize("plan,dies,options", DRILLS)
def test_fault_drill_recovers_exactly_once(artifacts, tmp_path, plan, dies, options):
    _, cnf, trace, _ = artifacts
    spool = tmp_path / "spool"
    mark = tmp_path / "fault-fired"
    _submit(spool, cnf, trace, count=2, options=options)

    first = _serve(spool, plan=f"{plan},mark={mark}")
    assert mark.exists(), f"fault never fired: {first.stdout}\n{first.stderr}"
    if dies:
        assert first.returncode != 0
        recovery = _serve(spool)
        assert recovery.returncode == 0, recovery.stderr
    else:
        assert first.returncode == 0, f"{first.stdout}\n{first.stderr}"
    _assert_exactly_once(spool, expect_done=2)


def test_worker_kill_is_absorbed_within_one_run(artifacts, tmp_path):
    """A SIGKILLed worker (token-gated, so the replacement survives) is
    replaced and the run still completes every job."""
    _, cnf, trace, _ = artifacts
    spool = tmp_path / "spool"
    token = tmp_path / "token"
    token.write_text("armed\n")
    mark = tmp_path / "fired"
    _submit(spool, cnf, trace, count=2)
    run = _serve(
        spool,
        plan=f"point=pool.task.start,kind=kill,repeat=1,token={token},mark={mark}",
    )
    assert run.returncode == 0, run.stderr
    assert mark.exists() and not token.exists()
    _assert_exactly_once(spool, expect_done=2)


def test_kill_during_journal_replay_recovers(artifacts, tmp_path):
    """Dying at startup replay loses nothing: the journal is read-only
    until replay finishes, so the next open sees the same records."""
    _, cnf, trace, _ = artifacts
    spool = tmp_path / "spool"
    _submit(spool, cnf, trace, count=1)
    assert _serve(spool).returncode == 0  # builds a journal worth replaying

    _submit(spool, cnf, trace, count=1, options={"timeout": 999})
    mark = tmp_path / "fired"
    crashed = _serve(spool, plan=f"point=jobs.journal.replay,kind=kill,mark={mark}")
    assert crashed.returncode != 0 and mark.exists()
    assert _serve(spool).returncode == 0
    _assert_exactly_once(spool, expect_done=2)


def test_poison_job_is_quarantined_then_requeued_by_operator(artifacts, tmp_path):
    """Crash every attempt → dead-letter; `repro status --dead` explains;
    `repro requeue` grants a fresh budget and the job completes."""
    _, cnf, trace, _ = artifacts
    spool = tmp_path / "spool"
    mark = tmp_path / "fired"
    _submit(spool, cnf, trace, count=1)

    run = _serve(spool, "--max-job-attempts", "2",
                 plan=f"point=pool.task.start,kind=kill,repeat=1,mark={mark}")
    assert run.returncode == 0, run.stderr  # quarantine is not a crash
    assert mark.exists()
    dead = read_dead_letters(spool)
    assert len(dead) == 1
    entry = dead[0]
    assert entry["attempts"] >= 2
    assert len(entry["attempt_history"]) >= 2
    assert Path(entry["dead_letter_path"]).is_file()

    status = _repro("status", spool, "--dead")
    assert status.returncode == 0
    assert entry["job_id"] in status.stdout

    requeue = _repro("requeue", spool, entry["job_id"])
    assert requeue.returncode == 0, requeue.stderr
    assert "requeued" in requeue.stdout

    assert _serve(spool).returncode == 0  # no plan: the fresh budget wins
    _assert_exactly_once(spool, expect_done=1)
    assert read_dead_letters(spool) == []


def test_requeue_of_unknown_job_fails_cleanly(tmp_path):
    spool = tmp_path / "spool"
    spool_layout(spool).ensure()
    result = _repro("requeue", spool, "job-999999")
    assert result.returncode == 1
    assert "no requeueable job" in result.stderr


def test_sigterm_under_load_is_graceful(artifacts, tmp_path):
    """SIGTERM mid-queue: in-flight checks finish, pending cache entries
    flush, the heartbeat is withdrawn, and no RUNNING orphan survives."""
    _, cnf, trace, _ = artifacts
    spool = tmp_path / "spool"
    wakeup_mark = tmp_path / "wakeup-fired"
    _submit(spool, cnf, trace, count=5)
    env = dict(os.environ, PYTHONPATH=SRC)
    env[faults.PLAN_ENV] = f"point=daemon.wakeup,kind=slow,arg=0.001,mark={wakeup_mark}"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(spool), "--workers", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        layout = spool_layout(spool)
        deadline = time.monotonic() + 60
        # Wait until it is demonstrably serving (heartbeat up), then load
        # it some more (the submit ping exercises the wakeup socket).
        while not list(layout.heartbeats()) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert list(layout.heartbeats()), "daemon never wrote a heartbeat"
        submit_job(spool, cnf, trace, {"method": "bf", "timeout": 777})
        submit_job(spool, cnf, trace, {"method": "bf", "timeout": 778})
        # The submit pings the wakeup socket; the armed slow-fault marks
        # the daemon.wakeup point when the daemon handles the ping.
        while not wakeup_mark.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert wakeup_mark.exists(), "wakeup ping never reached the daemon"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=120) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    assert list(spool_layout(spool).heartbeats()) == []  # withdrawn
    with JobStore(spool / "journal.jsonl", readonly=True) as store:
        states = {job.job_id: job.state for job in store.jobs()}
        assert JobState.RUNNING not in states.values(), states
        done = [j for j in store.jobs() if j.state is JobState.DONE]
    if done:
        # Whatever finished before the SIGTERM must have flushed verdicts.
        cache_files = (list((spool / "cache").glob("seg-*.jsonl"))
                       + list((spool / "cache").glob("*.json")))
        assert cache_files, "graceful stop lost the verdict-cache buffer"
    assert _serve(spool).returncode == 0
    _assert_exactly_once(spool, expect_done=7)


# -- health / heartbeat --------------------------------------------------------


def _write_heartbeat(layout, name, pid, age_s, interval=1.0):
    payload = {
        "daemon_id": name, "pid": pid, "shards": [0], "num_shards": 1,
        "interval_s": interval, "started_at": time.time() - 100,
        "written_at": time.time() - age_s, "counts": {},
    }
    (layout.health / f"{name}.json").write_text(
        json.dumps(payload), encoding="utf-8"
    )


def test_read_health_classifies_daemons(tmp_path):
    spool = tmp_path / "spool"
    layout = spool_layout(spool).ensure()
    reaped = subprocess.Popen([sys.executable, "-c", "pass"])
    reaped.wait()
    _write_heartbeat(layout, "daemon-alive", os.getpid(), age_s=0.0)
    _write_heartbeat(layout, "daemon-stale", os.getpid(), age_s=300.0)
    _write_heartbeat(layout, "daemon-dead", reaped.pid, age_s=0.0)
    (layout.health / "daemon-junk.json").write_text("not json", encoding="utf-8")

    health = read_health(spool)
    by_id = {d["daemon_id"]: d["status"] for d in health["daemons"]}
    assert by_id["daemon-alive"] == "alive"
    assert by_id["daemon-stale"] == "stale"
    assert by_id["daemon-dead"] == "dead"
    assert health["alive"] == 1 and health["stale"] == 1 and health["dead"] == 2

    status = _repro("status", spool, "--health")
    assert status.returncode == 0
    assert "1 alive, 1 stale, 2 dead" in status.stdout


def test_heartbeat_write_fault_is_never_fatal(tmp_path):
    daemon = CheckDaemon(tmp_path / "spool", num_workers=1)
    try:
        faults.install_plan("point=daemon.heartbeat.write,kind=raise")
        assert daemon.write_heartbeat(force=True) is False
        assert daemon.metrics.counter("daemon.heartbeat_errors").value == 1
        faults.reset()
        assert daemon.write_heartbeat(force=True) is True
        assert daemon.heartbeat_path.is_file()
        health = read_health(tmp_path / "spool")
        assert health["alive"] == 1
        daemon.clear_heartbeat()
        assert not daemon.heartbeat_path.exists()
    finally:
        daemon.store.close()


def test_stale_daemon_litter_is_reaped(tmp_path):
    """Heartbeat files (and wakeup sockets) of dead pids are cleaned up."""
    spool = tmp_path / "spool"
    layout = spool_layout(spool).ensure()
    ghost = subprocess.Popen([sys.executable, "-c", "pass"])
    ghost.wait()
    _write_heartbeat(layout, "daemon-ghost", ghost.pid, age_s=5.0)
    (layout.root / f"control-{ghost.pid}.sock").write_text("", encoding="utf-8")
    daemon = CheckDaemon(spool, num_workers=1)
    try:
        assert daemon.reap_stale_daemons() == 1
        assert not (layout.health / "daemon-ghost.json").exists()
        assert not (layout.root / f"control-{ghost.pid}.sock").exists()
    finally:
        daemon.store.close()


def test_requeue_control_file_applied_by_owning_daemon(artifacts, tmp_path):
    """`repro requeue` with a live daemon: the request travels as a spool
    control file and the journal keeps its single writer."""
    _, cnf, trace, _ = artifacts
    spool = tmp_path / "spool"
    submit_job(spool, cnf, trace, {"method": "bf"})
    daemon = CheckDaemon(spool, num_workers=1)
    try:
        daemon.ingest()
        (job,) = daemon.store.jobs()
        daemon.store.claim("w")
        daemon.store.park(job, {"error": "poison"})
        assert job.state is JobState.DEAD
        request_requeue(spool, job.job_id)
        daemon.ingest()
        assert job.state is JobState.PENDING
        assert daemon.metrics.counter("jobs.requeued_by_operator").value == 1
    finally:
        daemon.store.close()


# -- durability audits ---------------------------------------------------------


def test_journal_replay_applies_duplicate_terminals_last_writer_wins(tmp_path):
    journal = tmp_path / "journal.jsonl"
    records = [
        {"event": "submit", "t": 1.0,
         "job": {"job_id": "job-000001", "formula": "/f", "trace": "/t",
                 "options": {}, "submitted_at": 1.0}},
        {"event": "state", "job_id": "job-000001", "state": "RUNNING",
         "worker": "w1", "t": 2.0},
        {"event": "state", "job_id": "job-000001", "state": "DONE",
         "result": {"verified": True, "generation": 1}, "t": 3.0},
        {"event": "state", "job_id": "job-000001", "state": "DONE",
         "result": {"verified": True, "generation": 2}, "t": 4.0},
        {"event": "state", "job_id": "job-000001", "state": "RUNNING",
         "worker": "w2", "t": 5.0},          # stale claim after the verdict
        {"event": "requeue", "job_id": "job-000001", "t": 6.0},  # stale requeue
    ]
    journal.write_text(
        "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
    )
    with JobStore(journal, readonly=True) as store:
        job = store.get("job-000001")
        assert job.state is JobState.DONE
        assert job.result["generation"] == 2   # last writer won
        assert job.attempts == 1               # the stale RUNNING was ignored


def test_torn_journal_tail_is_isolated_on_reopen(tmp_path):
    """Appending after a torn tail must not glue records together."""
    journal = tmp_path / "journal.jsonl"
    with JobStore(journal) as store:
        store.submit("/f", "/t", {})
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write('{"event":"state","job_id":"job-000001","sta')  # no newline
    with JobStore(journal) as store:
        assert store.torn_lines == 1
        second = store.submit("/f2", "/t2", {})
    with JobStore(journal, readonly=True) as store:
        assert store.torn_lines == 1  # still one isolated tear, not two
        assert store.get(second.job_id) is not None
        assert len(store.jobs()) == 2


def test_dead_letter_write_fault_does_not_block_quarantine(tmp_path):
    """The journal owns the DEAD state; the dead-letter file is best-effort."""
    store = JobStore(tmp_path / "journal.jsonl", dead_letter_dir=tmp_path / "dead")
    job = store.submit("/f", "/t", {})
    store.claim("w")
    faults.install_plan("point=jobs.dead_letter.write,kind=enospc")
    store.park(job, {"error": "poison"})
    assert job.state is JobState.DEAD
    assert not (tmp_path / "dead" / f"{job.job_id}.json").exists()
    with JobStore(tmp_path / "journal.jsonl", readonly=True) as replay:
        assert replay.get(job.job_id).state is JobState.DEAD
    store.close()


def test_torn_cache_segment_recovers_intact_entries(artifacts, tmp_path):
    """A crashed segment writer's torn tail is counted and skipped; every
    fully-written verdict in the segment still hits."""
    formula, cnf, trace, _ = artifacts
    cache = VerdictCache(tmp_path / "cache", batch_size=8)
    client = ServiceClient(cache=cache)
    report = client.check(cnf, trace, method="bf")
    assert report.verified
    # check() fingerprints the *parsed* formula; mirror that for the lookup.
    fingerprint = client.fingerprint(formula, trace, {"method": "bf"})
    cache.flush()
    (segment,) = (tmp_path / "cache").glob("seg-*.jsonl")

    with open(segment, "a", encoding="utf-8") as handle:
        handle.write('{"key": "deadbeef", "schema_')  # the torn tail

    recovered = VerdictCache(tmp_path / "cache", batch_size=8)
    assert recovered.torn_lines == 1
    hit = recovered.get(fingerprint)
    assert hit is not None and hit.verified and hit.from_cache


def test_cache_flush_fault_keeps_entries_buffered(artifacts, tmp_path):
    """An ENOSPC mid-flush loses nothing in-process: the buffer is restored
    and the next (healthy) flush lands every verdict."""
    formula, cnf, trace, _ = artifacts
    cache = VerdictCache(tmp_path / "cache", batch_size=64)
    client = ServiceClient(cache=cache)
    report = client.check(cnf, trace, method="bf")
    assert report.verified
    faults.install_plan("point=cache.segment.rename,kind=enospc")
    client.flush_cache()  # swallowed, counted
    assert cache.metrics.counter("cache.flush_failures").value == 1
    assert cache.metrics.counter("cache.store_errors").value == 1
    assert not list((tmp_path / "cache").glob("seg-*.jsonl"))
    faults.reset()
    cache.flush()
    fingerprint = client.fingerprint(formula, trace, {"method": "bf"})
    fresh = VerdictCache(tmp_path / "cache")
    assert fresh.get(fingerprint) is not None


def test_orphaned_cache_tmp_files_are_swept(tmp_path):
    (tmp_path / "cache").mkdir()
    (tmp_path / "cache" / "seg-001.jsonl.tmp").write_text("{", encoding="utf-8")
    cache = VerdictCache(tmp_path / "cache")
    assert not list((tmp_path / "cache").glob("*.tmp"))
    assert cache.metrics.counter("cache.tmp_sweeps").value == 1


def test_checkpoint_write_fault_leaves_no_partial_file(tmp_path):
    from repro.checker.breadth_first import (
        _CHECKPOINT_VERSION, BfCheckpoint, load_checkpoint, write_checkpoint,
    )

    checkpoint = BfCheckpoint(
        version=_CHECKPOINT_VERSION, fingerprint=(0, 0, False, "x"), records_consumed=0,
        last_cid=0, resident={}, remaining={}, level_zero=[],
        final_conflicts=[], status="", clauses_built=0, resolutions=0,
        meter_current=0, meter_peak=0,
    )
    path = tmp_path / "check.ckpt"
    faults.install_plan("point=checkpoint.write,kind=enospc")
    with pytest.raises(OSError):
        write_checkpoint(checkpoint, path)
    assert not path.exists() and not Path(f"{path}.tmp").exists()
    faults.reset()
    write_checkpoint(checkpoint, path)
    assert load_checkpoint(path).fingerprint == (0, 0, False, "x")
