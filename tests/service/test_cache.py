"""The verdict cache: hits, the safety rejections, atomicity, LRU."""

import json

from repro.checker.report import REPORT_SCHEMA_VERSION, CheckReport
from repro.service.cache import VerdictCache
from repro.service.metrics import MetricsRegistry


def make_fingerprint(seed: str) -> dict:
    return {
        "formula_sha256": f"f-{seed}",
        "trace_sha256": f"t-{seed}",
        "options_sha256": f"o-{seed}",
        "key": f"key-{seed}",
    }


def make_report(verified: bool = True) -> CheckReport:
    return CheckReport(method="breadth-first", verified=verified, total_learned=10,
                       clauses_built=10, check_time=0.5)


def test_round_trip(tmp_path):
    cache = VerdictCache(tmp_path / "cache")
    fingerprint = make_fingerprint("a")
    cache.put(fingerprint, make_report())
    got = cache.get(fingerprint)
    assert got is not None and got.verified and got.from_cache
    assert got.fingerprint["trace_sha256"] == "t-a"
    assert cache.metrics.counter("cache.hits").value == 1


def test_miss_on_absent_key(tmp_path):
    cache = VerdictCache(tmp_path / "cache")
    assert cache.get(make_fingerprint("nope")) is None
    assert cache.metrics.counter("cache.misses").value == 1


def test_never_returns_entry_for_mismatched_component_digest(tmp_path):
    """Negative test required by the acceptance criteria: an entry must not
    come back for a different (formula, trace, options) fingerprint."""
    cache = VerdictCache(tmp_path / "cache")
    stored = make_fingerprint("a")
    cache.put(stored, make_report())
    for component in ("formula_sha256", "trace_sha256", "options_sha256"):
        probe = dict(stored)
        probe[component] = "something-else"
        # Same key on disk (we force it) but a different component digest:
        # the defense-in-depth re-check must refuse.
        assert cache.get(probe) is None
    assert cache.metrics.counter("cache.fingerprint_rejects").value == 3


def test_rejects_different_schema_version(tmp_path):
    cache = VerdictCache(tmp_path / "cache")
    fingerprint = make_fingerprint("a")
    cache.put(fingerprint, make_report())
    path = cache._entry_path(fingerprint["key"])
    entry = json.loads(path.read_text())
    entry["schema_version"] = REPORT_SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(fingerprint) is None
    assert cache.metrics.counter("cache.schema_rejects").value == 1


def test_rejects_entry_whose_report_schema_differs(tmp_path):
    cache = VerdictCache(tmp_path / "cache")
    fingerprint = make_fingerprint("a")
    cache.put(fingerprint, make_report())
    path = cache._entry_path(fingerprint["key"])
    entry = json.loads(path.read_text())
    entry["report"]["schema_version"] = REPORT_SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(fingerprint) is None
    assert cache.metrics.counter("cache.corrupt_entries").value == 1


def test_corrupt_entry_degrades_to_miss(tmp_path):
    cache = VerdictCache(tmp_path / "cache")
    fingerprint = make_fingerprint("a")
    cache.put(fingerprint, make_report())
    cache._entry_path(fingerprint["key"]).write_text("{torn json")
    assert cache.get(fingerprint) is None
    assert cache.metrics.counter("cache.corrupt_entries").value == 1


def test_failure_reports_round_trip(tmp_path):
    from repro.checker.errors import CheckFailure, FailureKind

    cache = VerdictCache(tmp_path / "cache")
    fingerprint = make_fingerprint("bad")
    report = CheckReport(
        method="depth-first",
        verified=False,
        failure=CheckFailure(FailureKind.BAD_RESOLUTION, "no clashing variable", cid=7),
    )
    cache.put(fingerprint, report)
    got = cache.get(fingerprint)
    assert got is not None and not got.verified
    assert got.failure.kind is FailureKind.BAD_RESOLUTION
    assert got.failure.context["cid"] == 7


def test_lru_eviction_over_bound(tmp_path):
    import os

    cache = VerdictCache(tmp_path / "cache", max_entries=3)
    prints = [make_fingerprint(str(index)) for index in range(4)]
    for index, fingerprint in enumerate(prints[:3]):
        cache.put(fingerprint, make_report())
        # mtime-ordered LRU: force distinct, increasing mtimes.
        os.utime(cache._entry_path(fingerprint["key"]), (index, index))
    cache.put(prints[3], make_report())
    assert cache.get(prints[0]) is None  # stalest entry evicted
    assert cache.get(prints[3]) is not None
    assert len(cache) == 3
    assert cache.metrics.counter("cache.evictions").value == 1


def test_invalidate(tmp_path):
    cache = VerdictCache(tmp_path / "cache")
    fingerprint = make_fingerprint("a")
    cache.put(fingerprint, make_report())
    assert cache.invalidate(fingerprint["key"]) is True
    assert cache.invalidate(fingerprint["key"]) is False
    assert cache.get(fingerprint) is None


def test_shared_metrics_registry(tmp_path):
    metrics = MetricsRegistry()
    cache = VerdictCache(tmp_path / "cache", metrics=metrics)
    cache.get(make_fingerprint("a"))
    assert metrics.counter("cache.misses").value == 1


# -- batched writes ------------------------------------------------------------


def test_batch_mode_serves_pending_before_flush(tmp_path):
    cache = VerdictCache(tmp_path / "cache", batch_size=3)
    first, second = make_fingerprint("a"), make_fingerprint("b")
    cache.put(first, make_report())
    cache.put(second, make_report())
    assert not list((tmp_path / "cache").glob("seg-*.jsonl"))  # still buffered
    assert cache.get(first).verified is True
    assert cache.get(second).from_cache is True
    assert cache.metrics.counter("cache.batched_stores").value == 2
    assert cache.metrics.counter("cache.flushes").value == 0


def test_batch_flushes_one_segment_when_full(tmp_path):
    cache = VerdictCache(tmp_path / "cache", batch_size=2)
    cache.put(make_fingerprint("a"), make_report())
    cache.put(make_fingerprint("b"), make_report())  # batch full -> flush
    segments = list((tmp_path / "cache").glob("seg-*.jsonl"))
    assert len(segments) == 1
    assert len(segments[0].read_text().splitlines()) == 2
    assert cache.metrics.counter("cache.flushes").value == 1
    assert cache.metrics.counter("cache.stores").value == 2


def test_flushed_segments_survive_reopen(tmp_path):
    cache = VerdictCache(tmp_path / "cache", batch_size=8)
    for seed in ("a", "b", "c"):
        cache.put(make_fingerprint(seed), make_report())
    cache.flush()
    reopened = VerdictCache(tmp_path / "cache", batch_size=8)
    assert len(reopened) == 3
    for seed in ("a", "b", "c"):
        assert reopened.get(make_fingerprint(seed)).from_cache is True


def test_newest_segment_wins_for_rewritten_key(tmp_path):
    cache = VerdictCache(tmp_path / "cache", batch_size=4)
    fingerprint = make_fingerprint("a")
    cache.put(fingerprint, make_report(verified=True))
    cache.flush()
    cache.put(fingerprint, make_report(verified=False))
    cache.flush()
    assert len(list((tmp_path / "cache").glob("seg-*.jsonl"))) == 2
    reopened = VerdictCache(tmp_path / "cache", batch_size=4)
    assert reopened.get(fingerprint).verified is False


def test_unflushed_entries_are_lost_never_corrupt(tmp_path):
    cache = VerdictCache(tmp_path / "cache", batch_size=100)
    cache.put(make_fingerprint("a"), make_report())
    # A crash before flush: reopening sees a clean, empty cache.
    reopened = VerdictCache(tmp_path / "cache", batch_size=100)
    assert len(reopened) == 0
    assert reopened.get(make_fingerprint("a")) is None


def test_eviction_weighs_segments_by_entry_count(tmp_path):
    import os

    cache = VerdictCache(tmp_path / "cache", max_entries=4, batch_size=3)
    for seed in ("a", "b", "c"):
        cache.put(make_fingerprint(seed), make_report())  # one 3-entry segment
    segment = next((tmp_path / "cache").glob("seg-*.jsonl"))
    os.utime(segment, (1, 1))  # make the segment the stalest file
    for seed in ("d", "e"):
        cache.put(make_fingerprint(seed), make_report())
    cache.flush()
    # 3 + 2 = 5 entries > 4: the stale 3-entry segment goes as one unit.
    assert not segment.exists()
    assert cache.metrics.counter("cache.evictions").value == 3
    assert cache.get(make_fingerprint("a")) is None
    assert cache.get(make_fingerprint("d")) is not None


def test_invalidate_covers_pending_and_segments(tmp_path):
    cache = VerdictCache(tmp_path / "cache", batch_size=4)
    buffered, flushed = make_fingerprint("a"), make_fingerprint("b")
    cache.put(flushed, make_report())
    cache.flush()
    cache.put(buffered, make_report())
    assert cache.invalidate(buffered["key"]) is True
    assert cache.invalidate(flushed["key"]) is True
    assert cache.get(buffered) is None
    assert cache.get(flushed) is None
