"""The fault-injection plane itself: parsing, firing, legacy shims, retries."""

import errno
import io
import os

import pytest

from repro import faults
from repro.faults import (
    LEGACY_CHECK_FAULT_ENV,
    LEGACY_POOL_FAULT_ENV,
    PLAN_ENV,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fault_point,
    fault_write,
    parse_spec,
    registered_points,
)
from repro.service.client import RetryPolicy, call_with_retries
from repro.service.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_plane(monkeypatch):
    """Every test starts with no plan armed and no fault env leaking in."""
    for var in (PLAN_ENV, LEGACY_CHECK_FAULT_ENV, LEGACY_POOL_FAULT_ENV):
        monkeypatch.delenv(var, raising=False)
    faults.reset()
    yield
    faults.reset()


# -- spec parsing --------------------------------------------------------------


def test_parse_spec_full_grammar(tmp_path):
    spec = parse_spec(
        "point=jobs.journal.append, kind=torn, after=3, repeat=1, key=done, "
        f"arg=0.5, then=raise, token={tmp_path / 't'}, mark={tmp_path / 'm'}"
    )
    assert spec.point == "jobs.journal.append"
    assert spec.kind == "torn"
    assert spec.after == 3
    assert spec.repeat is True
    assert spec.key == "done"
    assert spec.arg == 0.5
    assert spec.then == "raise"
    assert spec.token == str(tmp_path / "t")
    assert spec.mark == str(tmp_path / "m")


@pytest.mark.parametrize("bad", [
    "kind=kill",                          # no point
    "point=x",                            # no kind
    "point=x,kind=frobnicate",            # unknown kind
    "point=x,kind=kill,color=red",        # unknown field
    "point=x,kind=torn,then=explode",     # bad then
    "just-words",                         # not key=value
])
def test_parse_spec_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_spec(bad)


def test_plan_parses_multiple_entries():
    plan = FaultPlan.parse(
        "point=pool.task.start,kind=kill;point=cache.segment.rename,kind=enospc;;"
    )
    assert [s.point for s in plan.specs] == ["pool.task.start", "cache.segment.rename"]
    assert not plan.empty


# -- matching and firing -------------------------------------------------------


def test_match_exact_wildcard_and_key():
    spec = FaultSpec(point="cache.*", kind="raise")
    assert spec.matches("cache.segment.rename", None)
    assert not spec.matches("jobs.journal.append", None)
    keyed = FaultSpec(point="parallel.window", kind="raise", key="2")
    assert keyed.matches("parallel.window", "2")
    assert not keyed.matches("parallel.window", "1")
    assert not keyed.matches("parallel.window", None)


def test_after_counts_hits_and_one_shot_by_default():
    spec = FaultSpec(point="p", kind="raise", after=3)
    assert [spec.should_fire() for _ in range(5)] == [False, False, True, False, False]
    repeating = FaultSpec(point="p", kind="raise", after=2, repeat=True)
    assert [repeating.should_fire() for _ in range(4)] == [False, True, True, True]


def test_token_gate_is_a_cross_process_one_shot(tmp_path):
    token = tmp_path / "token"
    token.write_text("armed\n")
    spec = FaultSpec(point="p", kind="raise", token=str(token), repeat=True)
    assert spec.should_fire() is True          # wins the unlink
    assert not token.exists()
    assert spec.should_fire() is False         # token gone: never again
    unarmed = FaultSpec(point="p", kind="raise", token=str(tmp_path / "absent"))
    assert unarmed.should_fire() is False


def test_fault_point_noop_without_plan():
    fault_point("jobs.journal.append")  # must not raise, sleep or kill


def test_fault_point_raise_enospc_and_mark(tmp_path):
    mark = tmp_path / "fired"
    faults.install_plan(f"point=p.raise,kind=raise,mark={mark}")
    with pytest.raises(FaultInjected):
        fault_point("p.raise")
    assert mark.exists()
    fault_point("p.raise")  # one-shot: spent

    faults.install_plan("point=p.disk,kind=enospc")
    with pytest.raises(OSError) as exc_info:
        fault_point("p.disk")
    assert exc_info.value.errno == errno.ENOSPC


def test_fault_point_slow_proceeds(monkeypatch):
    faults.install_plan("point=p.slow,kind=slow,arg=0.001")
    fault_point("p.slow")  # sleeps briefly, then returns normally


def test_fault_write_passthrough_and_torn():
    sink = io.StringIO()
    fault_write("p.write", sink, "full record\n")
    assert sink.getvalue() == "full record\n"

    faults.install_plan("point=p.write,kind=torn,then=raise,arg=4")
    torn = io.StringIO()
    with pytest.raises(FaultInjected):
        fault_write("p.write", torn, "full record\n")
    assert torn.getvalue() == "full"  # only the prefix made it out

    faults.install_plan("point=p.write,kind=enospc")
    lost = io.StringIO()
    with pytest.raises(OSError):
        fault_write("p.write", lost, "full record\n")
    assert lost.getvalue() == ""  # disk-full loses the whole record


def test_torn_fraction_and_byte_count():
    spec = FaultSpec(point="p", kind="torn", arg=0.25)
    assert faults._torn_length(spec, 100) == 25
    spec = FaultSpec(point="p", kind="torn", arg=7)
    assert faults._torn_length(spec, 100) == 7
    spec = FaultSpec(point="p", kind="torn")
    assert faults._torn_length(spec, 100) == 50


def test_key_gated_entry_only_fires_on_its_key():
    faults.install_plan("point=jobs.journal.append,kind=raise,key=done")
    fault_point("jobs.journal.append", key="submit")  # other keys pass
    with pytest.raises(FaultInjected):
        fault_point("jobs.journal.append", key="done")


# -- env plumbing and the legacy shims -----------------------------------------


def test_env_plan_reparsed_when_env_changes(monkeypatch):
    assert faults.active_plan() is None
    monkeypatch.setenv(PLAN_ENV, "point=a,kind=raise")
    plan = faults.active_plan()
    assert [s.point for s in plan.specs] == ["a"]
    assert faults.active_plan() is plan  # stable env keeps hit counters
    monkeypatch.setenv(PLAN_ENV, "point=b,kind=raise")
    assert [s.point for s in faults.active_plan().specs] == ["b"]
    monkeypatch.delenv(PLAN_ENV)
    assert faults.active_plan() is None


def test_legacy_check_fault_translates_to_window_entry(monkeypatch, tmp_path):
    token = tmp_path / "tok"
    monkeypatch.setenv(LEGACY_CHECK_FAULT_ENV, f"hang:2:{token}:7.5")
    plan = faults.active_plan()
    (spec,) = plan.specs
    assert spec.point == "parallel.window"
    assert spec.kind == "hang"
    assert spec.key == "2"
    assert spec.token == str(token)
    assert spec.arg == 7.5
    assert spec.repeat is True


def test_legacy_check_fault_rejects_unknown_mode(monkeypatch, tmp_path):
    monkeypatch.setenv(LEGACY_CHECK_FAULT_ENV, f"explode:0:{tmp_path / 't'}")
    with pytest.raises(ValueError, match="mode"):
        faults.active_plan()


def test_legacy_pool_fault_translates_to_task_start_entry(monkeypatch, tmp_path):
    fault_file = tmp_path / "fault"
    monkeypatch.setenv(LEGACY_POOL_FAULT_ENV, str(fault_file))
    plan = faults.active_plan()
    (spec,) = plan.specs
    assert spec.point == "pool.task.start"
    assert spec.kind == "kill"
    assert spec.token == str(fault_file)
    # The token file is the switch: absent, the armed entry never fires.
    fault_point("pool.task.start")


def test_legacy_hooks_compose_with_the_unified_plan(monkeypatch, tmp_path):
    monkeypatch.setenv(PLAN_ENV, "point=a,kind=raise")
    monkeypatch.setenv(LEGACY_CHECK_FAULT_ENV, f"kill:0:{tmp_path / 't1'}")
    monkeypatch.setenv(LEGACY_POOL_FAULT_ENV, str(tmp_path / "t2"))
    plan = faults.active_plan()
    assert [s.point for s in plan.specs] == [
        "a", "parallel.window", "pool.task.start",
    ]


def test_registry_covers_every_hardened_subsystem():
    points = registered_points()
    expected = {
        "jobs.journal.append", "jobs.journal.replay", "jobs.dead_letter.write",
        "cache.entry.write", "cache.segment.write", "cache.segment.rename",
        "scheduler.claim", "scheduler.finalize",
        "pool.task.start", "pool.task.dispatch", "pool.result.collect",
        "daemon.spool.ingest", "daemon.wakeup", "daemon.heartbeat.write",
        "parallel.window", "supervisor.attempt", "checkpoint.write",
    }
    assert expected <= set(points)
    assert points["jobs.journal.append"]["writes"] is True


# -- client retry policy -------------------------------------------------------


def test_retry_policy_delays_are_capped_exponential():
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.3,
                         jitter=0.0)
    assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3]


def test_retry_policy_jitter_is_seedable():
    policy = RetryPolicy(seed=42)
    assert list(policy.delays()) == list(RetryPolicy(seed=42).delays())
    base = RetryPolicy(seed=42, jitter=0.0)
    for jittered, flat in zip(policy.delays(), base.delays()):
        assert flat <= jittered <= flat * 1.2


def test_call_with_retries_recovers_then_reraises():
    sleeps = []
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise OSError(errno.EIO, "transient")
        return "ok"

    metrics = MetricsRegistry()
    result = call_with_retries(
        flaky, RetryPolicy(max_attempts=4, jitter=0.0),
        metrics=metrics, sleep=sleeps.append,
    )
    assert result == "ok"
    assert len(sleeps) == 2
    assert metrics.counter("client.retries").value == 2

    attempts["n"] = -100  # now it never recovers: budget exhausts, re-raises
    with pytest.raises(OSError):
        call_with_retries(flaky, RetryPolicy(max_attempts=2, jitter=0.0),
                          sleep=sleeps.append)


def test_call_with_retries_gives_up_on_deterministic_errors():
    calls = {"n": 0}

    def missing():
        calls["n"] += 1
        raise FileNotFoundError("no such artifact")

    with pytest.raises(FileNotFoundError):
        call_with_retries(missing, RetryPolicy(max_attempts=5, jitter=0.0),
                          give_up_on=(FileNotFoundError,), sleep=lambda _: None)
    assert calls["n"] == 1  # not retried: FileNotFoundError is not transient
