"""The durable job store: journal replay, crash tolerance, dedup."""

import pytest

from repro.service.jobs import Job, JobState, JobStore


def submit(store: JobStore, tag: str = "a", dedup: str | None = None) -> Job:
    return store.submit(
        formula=f"/spool/{tag}.cnf",
        trace=f"/spool/{tag}.trace",
        options={"method": "bf"},
        dedup_key=dedup,
    )


def test_submit_claim_finish_lifecycle(tmp_path):
    store = JobStore(tmp_path / "journal.jsonl")
    job = submit(store)
    assert job.state is JobState.PENDING and job.job_id == "job-000001"
    claimed = store.claim(worker="w0")
    assert claimed.job_id == job.job_id and claimed.state is JobState.RUNNING
    assert store.claim(worker="w1") is None
    store.finish(job, {"verified": True})
    assert store.get(job.job_id).state is JobState.DONE
    assert store.get(job.job_id).result == {"verified": True}
    store.close()


def test_replay_restores_state(tmp_path):
    journal = tmp_path / "journal.jsonl"
    store = JobStore(journal)
    done = submit(store, "a")
    store.claim(worker="w0")
    store.finish(done, {"verified": True})
    failed = submit(store, "b")
    store.claim(worker="w0")
    store.fail(failed, {"error": "boom"})
    pending = submit(store, "c")
    store.close()

    reopened = JobStore(journal)
    assert reopened.get(done.job_id).state is JobState.DONE
    assert reopened.get(failed.job_id).state is JobState.FAILED
    assert reopened.get(failed.job_id).result == {"error": "boom"}
    assert reopened.get(pending.job_id).state is JobState.PENDING
    reopened.close()


def test_running_orphans_are_requeued_on_reopen(tmp_path):
    """A crash mid-check leaves RUNNING jobs; reopening must requeue them."""
    journal = tmp_path / "journal.jsonl"
    store = JobStore(journal)
    submit(store, "a")
    orphan = store.claim(worker="w0")
    assert orphan.state is JobState.RUNNING
    store.close()  # "crash": RUNNING state persisted, never finished

    reopened = JobStore(journal)
    job = reopened.get(orphan.job_id)
    assert job.state is JobState.PENDING
    assert job.attempts == 1  # the lost attempt is remembered
    reclaimed = reopened.claim(worker="w1")
    assert reclaimed.job_id == orphan.job_id
    reopened.close()

    # The requeue itself was journaled: a third replay agrees.
    third = JobStore(journal, readonly=True)
    assert third.get(orphan.job_id).state is JobState.RUNNING


def test_done_jobs_are_not_requeued(tmp_path):
    """Completed work must never be re-run after a restart."""
    journal = tmp_path / "journal.jsonl"
    store = JobStore(journal)
    job = submit(store, "a")
    store.claim(worker="w0")
    store.finish(job, {"verified": True})
    store.close()

    reopened = JobStore(journal)
    assert reopened.get(job.job_id).state is JobState.DONE
    assert reopened.claim(worker="w0") is None
    reopened.close()


def test_torn_final_line_is_tolerated(tmp_path):
    journal = tmp_path / "journal.jsonl"
    store = JobStore(journal)
    job = submit(store, "a")
    store.close()
    with open(journal, "a") as handle:
        handle.write('{"event": "state", "job_id": "job-000001", "sta')  # torn

    reopened = JobStore(journal)
    assert reopened.get(job.job_id).state is JobState.PENDING
    assert reopened.torn_lines == 1
    reopened.close()


def test_readonly_mode_does_not_mutate(tmp_path):
    journal = tmp_path / "journal.jsonl"
    store = JobStore(journal)
    submit(store, "a")
    store.claim(worker="w0")
    store.close()
    before = journal.read_bytes()

    viewer = JobStore(journal, readonly=True)
    # Readonly replay must NOT requeue the RUNNING orphan (a live daemon
    # may still own it) and must not append anything.
    assert viewer.get("job-000001").state is JobState.RUNNING
    with pytest.raises(RuntimeError):
        viewer.submit(formula="x", trace="y", options={})
    assert journal.read_bytes() == before


def test_dedup_key_returns_existing_job(tmp_path):
    store = JobStore(tmp_path / "journal.jsonl")
    first = submit(store, "a", dedup="k1")
    again = submit(store, "a", dedup="k1")
    assert again.job_id == first.job_id
    other = submit(store, "b", dedup="k2")
    assert other.job_id != first.job_id
    store.close()


def test_dedup_does_not_resurrect_failed_jobs(tmp_path):
    store = JobStore(tmp_path / "journal.jsonl")
    first = submit(store, "a", dedup="k1")
    store.claim(worker="w0")
    store.fail(first, {"error": "missing file"})
    retry = submit(store, "a", dedup="k1")
    assert retry.job_id != first.job_id  # FAILED jobs may be resubmitted
    store.close()


def test_serial_resumes_after_replay(tmp_path):
    journal = tmp_path / "journal.jsonl"
    store = JobStore(journal)
    submit(store, "a")
    submit(store, "b")
    store.close()
    reopened = JobStore(journal)
    assert submit(reopened, "c").job_id == "job-000003"
    reopened.close()


def test_terminal_transitions_are_final(tmp_path):
    store = JobStore(tmp_path / "journal.jsonl")
    job = submit(store, "a")
    store.claim(worker="w0")
    store.finish(job, {"verified": True})
    with pytest.raises(ValueError):
        store.fail(job, {"error": "late"})
    store.close()


def test_counts_and_depth(tmp_path):
    store = JobStore(tmp_path / "journal.jsonl")
    a = submit(store, "a")
    submit(store, "b")
    store.claim(worker="w0")
    assert store.queue_depth == 1
    counts = store.counts()
    assert counts["RUNNING"] == 1 and counts["PENDING"] == 1
    assert not store.all_terminal
    store.finish(a, {"verified": True})
    b = store.claim(worker="w0")
    store.fail(b, {"error": "x"})
    assert store.all_terminal
    store.close()
