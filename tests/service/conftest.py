"""Shared artifacts for the service tests: one solved instance on disk."""

from __future__ import annotations

import pytest

from repro.cnf.dimacs import write_dimacs_file
from repro.solver import Solver, SolverConfig
from repro.trace import AsciiTraceWriter, BinaryTraceWriter

from tests.conftest import pigeonhole


@pytest.fixture(scope="session")
def artifacts(tmp_path_factory):
    """(formula, cnf path, ascii trace path, binary trace path) for php(6,5)."""
    formula = pigeonhole(6, 5)
    root = tmp_path_factory.mktemp("service-artifacts")
    cnf = root / "php.cnf"
    write_dimacs_file(formula, cnf)
    ascii_path = root / "php.trace"
    writer = AsciiTraceWriter(ascii_path)
    assert Solver(formula, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    writer.close()
    binary_path = root / "php.rtb"
    writer = BinaryTraceWriter(binary_path)
    assert Solver(formula, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    writer.close()
    return formula, str(cnf), str(ascii_path), str(binary_path)


@pytest.fixture(scope="session")
def second_artifacts(tmp_path_factory):
    """A *different* UNSAT instance whose trace must never cross-validate."""
    formula = pigeonhole(7, 6)
    root = tmp_path_factory.mktemp("service-artifacts-2")
    cnf = root / "php76.cnf"
    write_dimacs_file(formula, cnf)
    trace = root / "php76.trace"
    writer = AsciiTraceWriter(trace)
    assert Solver(formula, SolverConfig(seed=0), trace_writer=writer).solve().is_unsat
    writer.close()
    return formula, str(cnf), str(trace)
