"""DRAT proofs through the checking service: jobs, verdict cache, chaos.

Clausal-proof jobs ride the same spool/journal/cache machinery as trace
jobs — same exactly-once guarantees, same fingerprint discipline. The
cache key must cover the proof-format options (a backward verdict carries
different prune content than a forward one), and a daemon killed at the
scheduler's claim/finalize points must recover DRAT jobs exactly once.
"""

import json
from pathlib import Path

import pytest

from repro import faults
from repro.cnf import parse_dimacs_file
from repro.service.cache import VerdictCache
from repro.service.client import ServiceClient
from repro.service.daemon import CheckDaemon, iter_results, submit_job
from repro.service.jobs import JobState, JobStore
from repro.service.scheduler import Scheduler

from tests.service.test_chaos import _assert_exactly_once, _serve, clean_plane  # noqa: F401
from tools.gen_drat import generate

DRAT_OPTIONS = {"method": "drat", "proof_format": "drat"}


@pytest.fixture(scope="module")
def drat_artifacts(tmp_path_factory):
    """(cnf path, text proof path, binary proof path) for one RAT fixture."""
    inst = generate(core=4, dead=8, rat=2)
    root = tmp_path_factory.mktemp("drat-artifacts")
    cnf = root / "inst.cnf"
    inst.write_cnf(cnf)
    text = root / "inst.drat"
    inst.write_proof(text, "text")
    binary = root / "inst.bdrat"
    inst.write_proof(binary, "binary")
    return str(cnf), str(text), str(binary)


# -- the happy path ------------------------------------------------------------


@pytest.mark.parametrize("which", ["text", "binary"])
def test_daemon_runs_drat_job_to_done(drat_artifacts, tmp_path, which):
    cnf, text, binary = drat_artifacts
    proof = text if which == "text" else binary
    spool = tmp_path / "spool"
    submit_job(spool, cnf, proof, dict(DRAT_OPTIONS))
    assert CheckDaemon(spool, num_workers=1).run_once() == 0
    ((job, payload),) = iter_results(spool)
    assert job.state is JobState.DONE
    assert payload["report"]["verified"] is True
    assert payload["report"]["method"] == "drat"
    assert payload["report"]["proof"]["rat_lemmas"] == 2


def test_backward_drat_job_reports_prune(drat_artifacts, tmp_path):
    cnf, text, _ = drat_artifacts
    spool = tmp_path / "spool"
    submit_job(spool, cnf, text, dict(DRAT_OPTIONS, backward=True))
    assert CheckDaemon(spool, num_workers=1).run_once() == 0
    ((job, payload),) = iter_results(spool)
    assert job.state is JobState.DONE
    assert payload["report"]["verified"] is True
    assert payload["report"]["prune"]["skipped"] >= 8


# -- verdict cache -------------------------------------------------------------


def test_resubmitted_drat_job_is_served_from_cache(drat_artifacts, tmp_path):
    cnf, text, _ = drat_artifacts
    store = JobStore(tmp_path / "journal.jsonl")
    client = ServiceClient(cache=VerdictCache(tmp_path / "cache"))
    scheduler = Scheduler(store, client, num_workers=1)
    store.submit(cnf, text, dict(DRAT_OPTIONS))
    scheduler.drain()
    # timeout=None is dropped from the fingerprint: same cache line.
    store.submit(cnf, text, dict(DRAT_OPTIONS, timeout=None))
    scheduler.drain()
    assert scheduler.metrics.counter("jobs.served_from_cache").value == 1
    assert store.all_terminal
    store.close()


def test_proof_format_options_key_the_cache(drat_artifacts, tmp_path):
    """forward vs backward (and the declared format) are distinct lines;
    identical resubmissions hit."""
    cnf, text, _ = drat_artifacts
    formula = parse_dimacs_file(cnf)
    client = ServiceClient(cache=VerdictCache(tmp_path / "cache"))

    forward = client.check(formula, text, **DRAT_OPTIONS)
    assert forward.verified and not forward.from_cache

    backward = client.check(formula, text, **DRAT_OPTIONS, backward=True)
    assert backward.verified and not backward.from_cache

    again = client.check(formula, text, **DRAT_OPTIONS, backward=True)
    assert again.from_cache
    assert again.prune["skipped"] >= 8  # prune stats survive the cache

    assert client.check(formula, text, **DRAT_OPTIONS).from_cache


def test_text_and_binary_proofs_are_distinct_cache_lines(drat_artifacts, tmp_path):
    """Different artifact bytes → different trace_sha → no false sharing."""
    cnf, text, binary = drat_artifacts
    formula = parse_dimacs_file(cnf)
    client = ServiceClient(cache=VerdictCache(tmp_path / "cache"))
    client.check(formula, text, **DRAT_OPTIONS)
    via_binary = client.check(formula, binary, **DRAT_OPTIONS)
    assert via_binary.verified and not via_binary.from_cache


# -- chaos drills --------------------------------------------------------------

DRAT_DRILLS = [
    pytest.param("point=scheduler.claim,kind=kill", True, id="claim-kill"),
    pytest.param("point=scheduler.claim,kind=raise", False, id="claim-raise"),
    pytest.param("point=scheduler.finalize,kind=kill", True, id="finalize-kill"),
]


@pytest.mark.parametrize("plan,dies", DRAT_DRILLS)
def test_drat_job_survives_scheduler_faults(drat_artifacts, tmp_path, plan, dies):
    """Kill (or blow up) the scheduler around a DRAT job; a recovery run
    must land every job DONE exactly once — same bar as trace jobs."""
    cnf, text, _ = drat_artifacts
    spool = tmp_path / "spool"
    mark = tmp_path / "fault-fired"
    for i in range(2):
        submit_job(spool, cnf, text, dict(DRAT_OPTIONS, timeout=500 + i))

    first = _serve(spool, plan=f"{plan},mark={mark}")
    assert mark.exists(), f"fault never fired: {first.stdout}\n{first.stderr}"
    if dies:
        assert first.returncode != 0
        recovery = _serve(spool)
        assert recovery.returncode == 0, recovery.stderr
    else:
        assert first.returncode == 0, f"{first.stdout}\n{first.stderr}"
    _assert_exactly_once(spool, expect_done=2)


def test_flipped_proof_job_is_done_but_unverified(drat_artifacts, tmp_path):
    """A refuted proof is a *verdict*, not a crash: the job lands DONE with
    verified=False and the failure serialized in the result."""
    cnf, text, _ = drat_artifacts
    flipped = tmp_path / "flipped.drat"
    lines = Path(text).read_text().splitlines()
    tokens = lines[0].split()
    tokens[0] = str(-int(tokens[0]))
    lines[0] = " ".join(tokens)
    flipped.write_text("\n".join(lines) + "\n")

    spool = tmp_path / "spool"
    submit_job(spool, cnf, str(flipped), dict(DRAT_OPTIONS))
    assert CheckDaemon(spool, num_workers=1).run_once() == 0
    ((job, payload),) = iter_results(spool)
    assert job.state is JobState.DONE
    assert payload["report"]["verified"] is False
    assert payload["report"]["failure"]["kind"] in ("not-rat", "bad-resolution")
