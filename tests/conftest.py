"""Shared fixtures and formula factories for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cnf import CnfFormula


def pigeonhole(pigeons: int, holes: int) -> CnfFormula:
    """PHP(pigeons, holes): unsatisfiable iff pigeons > holes."""
    clauses: list[list[int]] = []

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    for i in range(pigeons):
        clauses.append([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([-var(i1, j), -var(i2, j)])
    return CnfFormula(pigeons * holes, clauses)


def random_3sat(num_vars: int, num_clauses: int, seed: int) -> CnfFormula:
    """Uniform random 3-SAT."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return CnfFormula(num_vars, clauses)


def xor_chain(length: int, parity: bool = True) -> CnfFormula:
    """CNF encoding of x1 ^ x2, x2 ^ x3, ... with contradictory end units.

    Encodes xi != xi+1 along a chain and pins both ends so the instance is
    unsatisfiable for odd/even mismatches. Resolution proofs of XOR
    structures are long (the paper's longmult remark).
    """
    clauses: list[list[int]] = [[1]]
    for i in range(1, length):
        # xi != xi+1  <=>  (xi | xi+1) & (-xi | -xi+1)
        clauses.append([i, i + 1])
        clauses.append([-i, -(i + 1)])
    # Pin the far end to make parity (in)consistent.
    end = length if (length % 2 == 0) == parity else -length
    clauses.append([end])
    return CnfFormula(length, clauses)


@pytest.fixture
def php32() -> CnfFormula:
    return pigeonhole(3, 2)


@pytest.fixture
def php54() -> CnfFormula:
    return pigeonhole(5, 4)


@pytest.fixture
def trivially_unsat() -> CnfFormula:
    return CnfFormula(1, [[1], [-1]])


@pytest.fixture
def small_sat() -> CnfFormula:
    return CnfFormula(3, [[1, 2], [-1, 3], [-3, -2], [2, 3]])
