"""Unit tests for the assignment trail."""

import pytest

from repro.cnf import Assignment, FALSE, TRUE, UNASSIGNED


def test_initial_state():
    asg = Assignment(3)
    assert asg.decision_level == 0
    assert asg.num_assigned() == 0
    assert asg.value_of_lit(1) == UNASSIGNED
    assert not asg.is_assigned(2)


def test_assign_and_query_both_phases():
    asg = Assignment(3)
    asg.assign(2)
    assert asg.value_of_lit(2) == TRUE
    assert asg.value_of_lit(-2) == FALSE
    asg.assign(-3)
    assert asg.value_of_lit(3) == FALSE
    assert asg.value_of_lit(-3) == TRUE


def test_double_assignment_rejected():
    asg = Assignment(2)
    asg.assign(1)
    with pytest.raises(ValueError):
        asg.assign(-1)


def test_decision_levels_and_antecedents():
    asg = Assignment(4)
    asg.assign(1, antecedent=5)  # level 0 implication
    assert asg.levels[1] == 0
    assert asg.antecedents[1] == 5
    asg.new_decision_level()
    asg.assign(2)  # decision
    asg.assign(3, antecedent=7)
    assert asg.levels[2] == 1
    assert asg.levels[3] == 1
    assert asg.antecedents[2] == 0


def test_positions_record_chronology():
    asg = Assignment(3)
    asg.assign(3)
    asg.assign(-1)
    asg.assign(2)
    assert asg.positions[3] < asg.positions[1] < asg.positions[2]


def test_backtrack_clears_above_level():
    asg = Assignment(5)
    asg.assign(1)
    asg.new_decision_level()
    asg.assign(2)
    asg.new_decision_level()
    asg.assign(3)
    asg.assign(4)
    asg.backtrack(1)
    assert asg.decision_level == 1
    assert asg.is_assigned(1) and asg.is_assigned(2)
    assert not asg.is_assigned(3) and not asg.is_assigned(4)
    assert asg.trail == [1, 2]


def test_backtrack_to_current_level_is_noop():
    asg = Assignment(2)
    asg.new_decision_level()
    asg.assign(1)
    asg.backtrack(1)
    assert asg.is_assigned(1)


def test_backtrack_bad_level_rejected():
    asg = Assignment(2)
    with pytest.raises(ValueError):
        asg.backtrack(-1)
    with pytest.raises(ValueError):
        asg.backtrack(1)


def test_model_reflects_trail():
    asg = Assignment(3)
    asg.assign(1)
    asg.assign(-3)
    assert asg.model() == {1: True, 3: False}


def test_grow_preserves_state():
    asg = Assignment(2)
    asg.assign(1)
    asg.grow(5)
    assert asg.num_vars == 5
    assert asg.is_assigned(1)
    asg.assign(5)
    assert asg.value_of_lit(5) == TRUE
    asg.grow(3)  # shrink request is ignored
    assert asg.num_vars == 5
