"""Satisfiability-preserving transformations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf import CnfFormula
from repro.cnf.transforms import (
    flip_polarities,
    permute_clauses,
    permute_variables,
    remove_tautologies,
    scramble,
)
from repro.solver import SolverConfig, solve_formula
from repro.solver.reference import reference_is_satisfiable

from tests.conftest import pigeonhole, random_3sat


def test_permute_variables_roundtrip_model():
    formula = random_3sat(10, 30, seed=1)
    permuted, renaming = permute_variables(formula, seed=7)
    result = solve_formula(permuted)
    if result.is_sat:
        original_model = renaming.translate_model(result.model)
        assert formula.evaluate(original_model)


def test_permute_variables_is_bijective():
    formula = random_3sat(12, 30, seed=2)
    _, renaming = permute_variables(formula, seed=3)
    image = renaming.new_of[1:]
    assert sorted(image) == list(range(1, formula.num_vars + 1))


def test_permute_clauses_keeps_multiset():
    formula = random_3sat(8, 25, seed=4)
    permuted, order = permute_clauses(formula, seed=5)
    assert sorted(order) == list(range(1, formula.num_clauses + 1))
    original = sorted(tuple(sorted(c.literals)) for c in formula)
    shuffled = sorted(tuple(sorted(c.literals)) for c in permuted)
    assert original == shuffled


def test_flip_polarities_preserves_counts():
    formula = random_3sat(8, 25, seed=6)
    flipped, variables = flip_polarities(formula, seed=7)
    assert flipped.num_clauses == formula.num_clauses
    for old, new in zip(formula, flipped):
        assert {abs(l) for l in old.literals} == {abs(l) for l in new.literals}


@pytest.mark.parametrize("seed", range(5))
def test_scramble_preserves_satisfiability(seed):
    formula = random_3sat(12, 46, seed=seed)
    scrambled = scramble(formula, seed=seed + 100)
    assert reference_is_satisfiable(formula) == reference_is_satisfiable(scrambled)


def test_scramble_preserves_unsat_and_proof_checks():
    from repro.checker import DepthFirstChecker
    from repro.trace import InMemoryTraceWriter

    formula = scramble(pigeonhole(5, 4), seed=11)
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, trace_writer=writer)
    assert result.is_unsat
    assert DepthFirstChecker(formula, writer.to_trace()).check().verified


def test_remove_tautologies():
    formula = CnfFormula(3, [[1, -1], [1, 2], [2, 1], [1, 2], [3]])
    cleaned = remove_tautologies(formula)
    assert cleaned.num_clauses == 2
    assert cleaned[1].literals == (1, 2)
    assert cleaned[2].literals == (3,)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_scramble_property(seed):
    formula = random_3sat(9, 32, seed=seed % 50)
    scrambled = scramble(formula, seed=seed)
    assert reference_is_satisfiable(formula) == reference_is_satisfiable(scrambled)
