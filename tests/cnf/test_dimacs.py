"""Unit tests for DIMACS parsing and writing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cnf import CnfFormula, DimacsError, parse_dimacs, write_dimacs
from repro.cnf.dimacs import parse_dimacs_file, write_dimacs_file

BASIC = """\
c a comment
p cnf 3 2
1 -2 0
2 3 -1 0
"""


def test_parse_basic():
    formula = parse_dimacs(BASIC)
    assert formula.num_vars == 3
    assert formula.num_clauses == 2
    assert formula[1].literals == (1, -2)
    assert formula[2].literals == (2, 3, -1)


def test_parse_multiline_clause():
    text = "p cnf 3 1\n1 2\n3 0\n"
    formula = parse_dimacs(text)
    assert formula[1].literals == (1, 2, 3)


def test_parse_multiple_clauses_one_line():
    text = "p cnf 2 2\n1 0 -2 0\n"
    formula = parse_dimacs(text)
    assert formula.num_clauses == 2


def test_parse_trailing_percent_section():
    text = "p cnf 1 1\n1 0\n%\n0\n"
    formula = parse_dimacs(text)
    assert formula.num_clauses == 1


def test_parse_final_clause_missing_zero():
    text = "p cnf 2 1\n1 2\n"
    formula = parse_dimacs(text)
    assert formula[1].literals == (1, 2)


def test_missing_header_rejected():
    with pytest.raises(DimacsError):
        parse_dimacs("1 2 0\n")


def test_duplicate_header_rejected():
    with pytest.raises(DimacsError):
        parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n")


def test_bad_header_rejected():
    with pytest.raises(DimacsError):
        parse_dimacs("p dnf 1 1\n1 0\n")
    with pytest.raises(DimacsError):
        parse_dimacs("p cnf one 1\n1 0\n")


def test_clause_count_mismatch_rejected():
    with pytest.raises(DimacsError):
        parse_dimacs("p cnf 1 2\n1 0\n")


def test_bad_token_rejected():
    with pytest.raises(DimacsError):
        parse_dimacs("p cnf 1 1\n1 x 0\n")


def test_roundtrip_with_comment():
    formula = CnfFormula(3, [[1, -2], [3]])
    text = write_dimacs(formula, comment="hello\nworld")
    assert text.startswith("c hello\nc world\np cnf 3 2\n")
    again = parse_dimacs(text)
    assert [c.literals for c in again] == [c.literals for c in formula]


def test_file_roundtrip(tmp_path):
    formula = CnfFormula(2, [[1, 2], [-1], [-2, 1]])
    path = tmp_path / "f.cnf"
    write_dimacs_file(formula, path)
    again = parse_dimacs_file(path)
    assert again.num_vars == 2
    assert [c.literals for c in again] == [c.literals for c in formula]


clause_strategy = st.lists(
    st.integers(min_value=-8, max_value=8).filter(lambda x: x != 0),
    min_size=1,
    max_size=5,
)


@given(st.lists(clause_strategy, min_size=1, max_size=12))
def test_roundtrip_property(clause_lists):
    formula = CnfFormula(8, clause_lists)
    again = parse_dimacs(write_dimacs(formula))
    assert again.num_vars == formula.num_vars
    assert [c.literals for c in again] == [c.literals for c in formula]
