"""Unit tests for Clause."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cnf import Clause

lit_strategy = st.integers(min_value=-50, max_value=50).filter(lambda x: x != 0)


def test_clause_preserves_order_and_dedups():
    clause = Clause(1, [3, -2, 3, 5, -2])
    assert clause.literals == (3, -2, 5)


def test_clause_rejects_zero_literal():
    with pytest.raises(ValueError):
        Clause(1, [1, 0, 2])


def test_clause_rejects_non_int():
    with pytest.raises(ValueError):
        Clause(1, [1, "2"])  # type: ignore[list-item]


def test_empty_clause():
    clause = Clause(9, [])
    assert clause.is_empty
    assert len(clause) == 0
    assert not clause.is_unit


def test_unit_clause():
    clause = Clause(2, [-4])
    assert clause.is_unit
    assert not clause.is_empty


def test_tautology_detection():
    assert Clause(1, [1, -1]).is_tautology
    assert not Clause(2, [1, 2]).is_tautology


def test_membership_and_iteration():
    clause = Clause(1, [1, -2, 3])
    assert -2 in clause
    assert 2 not in clause
    assert list(clause) == [1, -2, 3]


def test_variables():
    assert Clause(1, [1, -2, 3]).variables() == {1, 2, 3}


def test_equality_ignores_literal_order():
    assert Clause(1, [1, 2]) == Clause(1, [2, 1])
    assert Clause(1, [1, 2]) != Clause(2, [1, 2])
    assert hash(Clause(1, [1, 2])) == hash(Clause(1, [2, 1]))


def test_equality_and_hash_ignore_duplicate_literals():
    # Literals are deduplicated at construction, so a clause built with
    # repeats must be equal to (and hash with) its deduplicated twin —
    # the interning store and dict-keyed checker state rely on this.
    assert Clause(1, [1, 2, 2]) == Clause(1, [2, 1])
    assert hash(Clause(1, [1, 2, 2])) == hash(Clause(1, [2, 1]))
    assert Clause(3, [5, 5, -7, 5]) == Clause(3, [-7, 5])
    assert hash(Clause(3, [5, 5, -7, 5])) == hash(Clause(3, [-7, 5]))


@given(st.lists(lit_strategy, min_size=1, max_size=8))
def test_duplicated_literals_never_split_equality(lits):
    doubled = Clause(1, lits + lits)
    assert doubled == Clause(1, lits)
    assert hash(doubled) == hash(Clause(1, lits))


def test_repr_marks_learned():
    assert repr(Clause(7, [1], learned=True)).startswith("Clause(L7")
    assert repr(Clause(7, [1])).startswith("Clause(O7")


@given(st.lists(lit_strategy, max_size=20))
def test_clause_literals_unique(lits):
    clause = Clause(1, lits)
    assert len(set(clause.literals)) == len(clause.literals)
    assert set(clause.literals) == set(lits)
