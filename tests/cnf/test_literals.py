"""Unit tests for literal helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cnf import literals


def test_negate_flips_sign():
    assert literals.negate(3) == -3
    assert literals.negate(-7) == 7


def test_variable_of_strips_sign():
    assert literals.variable_of(5) == 5
    assert literals.variable_of(-5) == 5


def test_is_positive():
    assert literals.is_positive(1)
    assert not literals.is_positive(-1)


def test_literal_builds_both_phases():
    assert literals.literal(4, True) == 4
    assert literals.literal(4, False) == -4


def test_literal_rejects_nonpositive_var():
    with pytest.raises(ValueError):
        literals.literal(0, True)
    with pytest.raises(ValueError):
        literals.literal(-2, False)


def test_lit_to_str():
    assert literals.lit_to_str(3) == "x3"
    assert literals.lit_to_str(-3) == "~x3"


@given(st.integers(min_value=1, max_value=10**6), st.booleans())
def test_literal_roundtrip(var, positive):
    lit = literals.literal(var, positive)
    assert literals.variable_of(lit) == var
    assert literals.is_positive(lit) == positive
    assert literals.negate(literals.negate(lit)) == lit
