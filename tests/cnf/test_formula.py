"""Unit tests for CnfFormula."""

import pytest

from repro.cnf import CnfFormula


def test_clause_ids_follow_order_of_appearance():
    formula = CnfFormula(3, [[1, 2], [-1, 3], [-2, -3]])
    assert [c.cid for c in formula] == [1, 2, 3]
    assert formula[2].literals == (-1, 3)


def test_getitem_rejects_bad_ids():
    formula = CnfFormula(2, [[1, 2]])
    with pytest.raises(KeyError):
        formula[0]
    with pytest.raises(KeyError):
        formula[2]


def test_num_vars_grows_with_clauses():
    formula = CnfFormula(2)
    formula.add_clause([1, -5])
    assert formula.num_vars == 5


def test_negative_num_vars_rejected():
    with pytest.raises(ValueError):
        CnfFormula(-1)


def test_used_variables_vs_declared():
    formula = CnfFormula(10, [[1, -3]])
    assert formula.used_variables() == {1, 3}
    assert formula.num_vars == 10


def test_restrict_to_renumbers_clauses():
    formula = CnfFormula(3, [[1], [2], [3], [-1, -2]])
    sub = formula.restrict_to([4, 1])
    assert sub.num_clauses == 2
    assert sub[1].literals == (1,)
    assert sub[2].literals == (-1, -2)
    assert sub.num_vars == 3


def test_evaluate_satisfying_model():
    formula = CnfFormula(2, [[1, 2], [-1, 2]])
    assert formula.evaluate({1: True, 2: True})
    assert formula.evaluate({2: True})  # partial model can still satisfy
    assert not formula.evaluate({1: True, 2: False})


def test_evaluate_empty_clause_is_unsat():
    formula = CnfFormula(1)
    formula.add_clause([])
    assert not formula.evaluate({1: True})
