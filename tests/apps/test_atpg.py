"""The ATPG application flow."""

import pytest

from repro.apps import StuckAtFault, enumerate_faults, generate_test, run_atpg
from repro.apps.atpg import inject_fault
from repro.circuits import Circuit, ripple_carry_adder


def _and_circuit():
    circuit = Circuit(name="and2")
    a, b = circuit.add_inputs(2)
    circuit.mark_output(circuit.and_(a, b))
    return circuit


def _redundant_circuit():
    """out = a AND (a OR b): the OR gate is redundant (out == a).

    A stuck-at-1 fault on the OR output is untestable.
    """
    circuit = Circuit(name="redundant")
    a, b = circuit.add_inputs(2)
    or_net = circuit.or_(a, b)
    circuit.mark_output(circuit.and_(a, or_net))
    return circuit, or_net


class TestInjectFault:
    def test_consumer_sees_constant(self):
        circuit = _and_circuit()
        faulty = inject_fault(circuit, StuckAtFault(circuit.inputs[0], True))
        # With a stuck at 1, output follows b.
        assert faulty.simulate([False, True]) == [True]
        assert faulty.simulate([False, False]) == [False]

    def test_unknown_net_rejected(self):
        with pytest.raises(ValueError):
            inject_fault(_and_circuit(), StuckAtFault(999, True))

    def test_fault_str(self):
        assert str(StuckAtFault(7, True)) == "net7/sa1"
        assert str(StuckAtFault(7, False)) == "net7/sa0"


class TestGenerateTest:
    def test_testable_fault_gets_real_vector(self):
        circuit = _and_circuit()
        # Output stuck at 1: any input with output 0 detects it.
        fault = StuckAtFault(circuit.gates[0].output, True)
        result = generate_test(circuit, fault)
        assert result.testable is True
        faulty = inject_fault(circuit, fault)
        assert circuit.simulate(result.vector) != faulty.simulate(result.vector)

    def test_untestable_fault_proven(self):
        circuit, or_net = _redundant_circuit()
        result = generate_test(circuit, StuckAtFault(or_net, True))
        assert result.testable is False
        assert result.proof_report is not None and result.proof_report.verified

    def test_input_faults_on_adder(self):
        adder = ripple_carry_adder(2)
        fault = StuckAtFault(adder.inputs[0], True)
        result = generate_test(adder, fault)
        assert result.testable is True


class TestRunAtpg:
    def test_enumerate_covers_inputs_and_gates(self):
        circuit = _and_circuit()
        faults = enumerate_faults(circuit)
        assert len(faults) == 2 * (2 + 1)  # two inputs + one gate, both phases

    def test_full_atpg_on_redundant_circuit(self):
        circuit, or_net = _redundant_circuit()
        report = run_atpg(circuit)
        assert report.results
        untestable_faults = {r.fault for r in report.untestable}
        assert StuckAtFault(or_net, True) in untestable_faults
        assert 0.0 < report.fault_coverage < 1.0
        # Every testable fault's vector really works.
        for result in report.testable:
            faulty = inject_fault(circuit, result.fault)
            assert circuit.simulate(result.vector) != faulty.simulate(result.vector)

    def test_adder_is_fully_testable(self):
        # Ripple-carry adders have no redundant logic apart from the
        # constant carry-in wiring; restrict faults to gate outputs that
        # feed outputs to keep runtime small.
        adder = ripple_carry_adder(2)
        faults = [StuckAtFault(net, v) for net in adder.outputs for v in (False, True)]
        report = run_atpg(adder, faults)
        assert report.fault_coverage == 1.0

    def test_empty_fault_list(self):
        report = run_atpg(_and_circuit(), faults=[])
        assert report.fault_coverage == 1.0
        assert not report.results
