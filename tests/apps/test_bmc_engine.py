"""The BMC application flow."""

import pytest

from repro.apps import BoundedModelChecker
from repro.bmc import counter_system, lfsr_system, token_ring_system
from repro.solver import SolverConfig


class TestCounter:
    def test_sweep_finds_counterexample_at_exact_depth(self):
        system = counter_system(4, bad_value=5)
        outcome = BoundedModelChecker(system).run(max_bound=8)
        assert outcome.property_violated
        assert outcome.counterexample.length == 5
        assert outcome.safe_through == 4
        assert len(outcome.proof_reports) == 5
        assert all(report.verified for report in outcome.proof_reports)

    def test_counterexample_states_decode_the_count(self):
        system = counter_system(4, bad_value=3)
        outcome = BoundedModelChecker(system).run(max_bound=5)
        cex = outcome.counterexample
        values = [
            sum(1 << i for i, bit in enumerate(state) if bit) for state in cex.states
        ]
        assert values == [0, 1, 2, 3]
        assert cex.bad_step == 3

    def test_safe_when_bound_too_small(self):
        system = counter_system(4, bad_value=9)
        outcome = BoundedModelChecker(system).run(max_bound=6)
        assert not outcome.property_violated
        assert outcome.safe_through == 6

    def test_enabled_counter_cex_uses_inputs(self):
        system = counter_system(4, bad_value=3, with_enable=True)
        outcome = BoundedModelChecker(system).run(max_bound=4)
        cex = outcome.counterexample
        assert cex is not None
        # Exactly three of the enable inputs fired along the way.
        fired = sum(1 for step in cex.inputs[: cex.bad_step] for bit in step if bit)
        assert fired == 3


class TestInvariants:
    def test_token_ring_safe(self):
        outcome = BoundedModelChecker(token_ring_system(4)).run(max_bound=6)
        assert not outcome.property_violated
        assert outcome.safe_through == 6

    def test_lfsr_safe(self):
        outcome = BoundedModelChecker(lfsr_system(5)).run(max_bound=6)
        assert not outcome.property_violated


def test_budget_exhaustion_raises():
    # Free enable inputs force real decisions, so a zero-decision budget
    # must trip at some bound.
    system = counter_system(5, bad_value=20, with_enable=True)
    checker = BoundedModelChecker(system, config=SolverConfig(max_decisions=0))
    with pytest.raises(RuntimeError):
        for bound in range(10):
            checker.check_bound(bound)
