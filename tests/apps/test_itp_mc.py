"""Interpolation-based unbounded model checking."""

import pytest

from repro.apps import InterpolationModelChecker
from repro.bmc import counter_system, lfsr_system, token_ring_system
from repro.circuits import Circuit
from repro.bmc.transition import TransitionSystem
from repro.solver import SolverConfig


class TestProvedProperties:
    def test_token_ring_proved_for_all_depths(self):
        result = InterpolationModelChecker(token_ring_system(4)).prove(max_bound=6)
        assert result.status == "proved"
        assert result.fixed_point_frontier is not None
        assert result.image_iterations >= 1

    def test_lfsr_proved(self):
        result = InterpolationModelChecker(lfsr_system(4)).prove(max_bound=8)
        assert result.status == "proved"

    def test_fixed_point_is_a_sound_invariant(self):
        """Semantic check by exhaustive simulation on a small ring:
        every reachable state satisfies Init OR reach-set; no bad state
        satisfies the reach set (interpolants exclude bad states)."""
        system = token_ring_system(3)
        result = InterpolationModelChecker(system).prove(max_bound=6)
        assert result.status == "proved"
        union = result.fixed_point_frontier

        def one_hot(state):
            return sum(state) == 1

        # Reachable states: the three rotations of the initial token.
        reachable = [
            [i == position for i in range(3)] for position in range(3)
        ]
        for state in reachable:
            in_init = state == [True, False, False]
            assert in_init or union.simulate(state)[0], state
        for bits in range(8):
            state = [bool((bits >> i) & 1) for i in range(3)]
            if not one_hot(state):  # a bad state
                assert not union.simulate(state)[0], state


class TestCounterexamples:
    def test_counter_cex_found_at_exact_depth(self):
        system = counter_system(4, bad_value=5)
        result = InterpolationModelChecker(system).prove(max_bound=8)
        assert result.status == "counterexample"
        assert result.counterexample.length == 5

    def test_enabled_counter_cex_with_budget(self):
        system = counter_system(3, bad_value=5, with_enable=True)
        result = InterpolationModelChecker(system).prove(max_bound=8, max_images=60)
        assert result.status == "counterexample"
        assert result.counterexample.length == 5

    def test_initially_bad_state(self):
        # Init admits the all-ones state; bad = all ones.
        system = counter_system(2, bad_value=3)
        relaxed = TransitionSystem(
            num_state_bits=2,
            num_input_bits=0,
            init=[],  # any initial state
            transition=system.transition,
            bad=system.bad,
            name="relaxed",
        )
        result = InterpolationModelChecker(relaxed).prove(max_bound=4)
        assert result.status == "counterexample"
        assert result.counterexample.length == 0
        assert result.counterexample.states[0] == [True, True]


class TestBudgets:
    def test_image_budget_gives_unknown(self):
        system = counter_system(4, bad_value=15, with_enable=True)
        result = InterpolationModelChecker(system).prove(max_bound=20, max_images=5)
        assert result.status == "unknown"

    def test_bound_budget_gives_unknown(self):
        system = counter_system(4, bad_value=15, with_enable=True)
        result = InterpolationModelChecker(system).prove(max_bound=3, max_images=100)
        assert result.status == "unknown"

    def test_large_budget_decides_deep_counterexample(self):
        system = counter_system(4, bad_value=15, with_enable=True)
        result = InterpolationModelChecker(system).prove(max_bound=20, max_images=200)
        assert result.status == "counterexample"
        assert result.counterexample.length == 15
