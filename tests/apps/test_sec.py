"""Sequential equivalence checking."""

import pytest

from repro.apps import build_product_system, check_sequential_equivalence
from repro.circuits import Circuit, Register, SequentialCircuit


def _toggle(init=False, inverted_encoding=False):
    """A one-register toggle; optionally state-inverted (same behaviour
    after re-observation, different with raw observation)."""
    core = Circuit(name="toggle")
    state = core.add_input()
    enable = core.add_input()
    if inverted_encoding:
        nxt = core.xnor(state, enable)  # stores the complement trajectory
    else:
        nxt = core.xor(state, enable)
    return SequentialCircuit(
        core=core,
        registers=[Register(output=state, next_input=nxt, init=init)],
        num_primary_inputs=1,
    )


def _two_register_counter(gray=False):
    """A 2-bit counter with enable; optionally Gray-coded.

    Both count cycles of length 4; bit patterns differ.
    """
    core = Circuit(name="gray" if gray else "binary")
    b0, b1 = core.add_input(), core.add_input()
    enable = core.add_input()
    if gray:
        # Gray sequence 00 -> 01 -> 11 -> 10: n0 = b0 xor (en and not b1 ...)
        n0 = core.mux(enable, b0, core.not_(b1))
        n1 = core.mux(enable, b1, b0)
    else:
        n0 = core.xor(b0, enable)
        n1 = core.xor(b1, core.and_(b0, enable))
    return SequentialCircuit(
        core=core,
        registers=[Register(output=b0, next_input=n0), Register(output=b1, next_input=n1)],
        num_primary_inputs=1,
    )


class TestProductConstruction:
    def test_interface_mismatch_rejected(self):
        left = _toggle()
        right_core = Circuit()
        s = right_core.add_input()
        right = SequentialCircuit(
            core=right_core,
            registers=[Register(output=s, next_input=s)],
            num_primary_inputs=0,
        )
        with pytest.raises(ValueError):
            build_product_system(left, right)

    def test_observed_pairing_validated(self):
        left, right = _toggle(), _toggle()
        with pytest.raises(ValueError):
            build_product_system(left, right, observed_left=[0], observed_right=[])
        with pytest.raises(ValueError):
            build_product_system(left, right, observed_left=[5], observed_right=[0])

    def test_product_dimensions(self):
        system = build_product_system(_toggle(), _toggle())
        assert system.num_state_bits == 2
        assert system.num_input_bits == 1


class TestVerdicts:
    def test_identical_toggles_proved_equivalent(self):
        result = check_sequential_equivalence(_toggle(), _toggle(), bound=4)
        assert result.equivalent is True
        assert result.proved_unbounded

    def test_different_reset_caught(self):
        result = check_sequential_equivalence(_toggle(init=False), _toggle(init=True), bound=4)
        assert result.equivalent is False
        assert result.distinguishing_run is not None
        assert result.distinguishing_run.length == 0  # differ at reset

    def test_inverted_encoding_diverges_after_one_step(self):
        result = check_sequential_equivalence(
            _toggle(), _toggle(inverted_encoding=True), bound=4
        )
        assert result.equivalent is False
        # Same reset state; one enable pulse separates them.
        assert result.distinguishing_run.length >= 1

    def test_binary_vs_gray_counters_differ(self):
        result = check_sequential_equivalence(
            _two_register_counter(gray=False), _two_register_counter(gray=True), bound=6
        )
        assert result.equivalent is False

    def test_binary_vs_gray_low_bit_only(self):
        # Observing only bit 0: binary toggles it every enable; Gray does
        # not — still distinguishable.
        result = check_sequential_equivalence(
            _two_register_counter(gray=False),
            _two_register_counter(gray=True),
            observed_left=[0],
            observed_right=[0],
            bound=6,
        )
        assert result.equivalent is False

    def test_undecided_without_proof(self):
        # prove=False and a bounded run on equivalent designs: undecided.
        result = check_sequential_equivalence(
            _toggle(), _toggle(), bound=3, prove=False
        )
        assert result.equivalent is None
        assert result.bound_checked == 3
