"""The CEC application flow."""

import pytest

from repro.apps import EquivalenceChecker
from repro.circuits import (
    Circuit,
    carry_select_adder,
    random_circuit,
    rewritten_copy,
    ripple_carry_adder,
)
from repro.solver import SolverConfig


def test_equivalent_adders_verified():
    outcome = EquivalenceChecker(
        ripple_carry_adder(5), carry_select_adder(5, block=2)
    ).run()
    assert outcome.equivalent is True
    assert outcome.proof_report is not None and outcome.proof_report.verified
    assert outcome.counterexample is None


def test_rewritten_copy_verified():
    original = random_circuit(8, 40, 3, seed=10)
    outcome = EquivalenceChecker(original, rewritten_copy(original, seed=11)).run()
    assert outcome.equivalent is True


def test_inequivalent_circuits_yield_real_counterexample():
    left = Circuit()
    a, b = left.add_inputs(2)
    left.mark_output(left.and_(a, b))
    right = Circuit()
    a2, b2 = right.add_inputs(2)
    right.mark_output(right.or_(a2, b2))
    outcome = EquivalenceChecker(left, right).run()
    assert outcome.equivalent is False
    assert outcome.counterexample is not None
    # The returned vector genuinely distinguishes the circuits.
    assert left.simulate(outcome.counterexample) != right.simulate(outcome.counterexample)
    assert outcome.left_outputs != outcome.right_outputs


def test_single_gate_difference_found():
    base = random_circuit(6, 25, 2, seed=5)
    # Build a near-copy with one gate type flipped.
    from repro.circuits.netlist import GateType

    mutated = Circuit(name="mutated")
    remap = {}
    for net in base.inputs:
        remap[net] = mutated.add_input()
    flipped = False
    for gate in base.gates:
        gtype = gate.gtype
        if not flipped and gtype == GateType.AND:
            gtype = GateType.OR
            flipped = True
        remap[gate.output] = mutated.add_gate(gtype, *(remap[n] for n in gate.inputs))
    for net in base.outputs:
        mutated.mark_output(remap[net])
    assert flipped, "seed produced no AND gate; adjust the test"

    outcome = EquivalenceChecker(base, mutated).run()
    # The mutation might be masked (redundant); both verdicts must be validated.
    if outcome.equivalent:
        assert outcome.proof_report.verified
    else:
        assert base.simulate(outcome.counterexample) != mutated.simulate(outcome.counterexample)


def test_budget_returns_unknown():
    outcome = EquivalenceChecker(
        ripple_carry_adder(8),
        carry_select_adder(8, block=2),
        config=SolverConfig(max_conflicts=1),
    ).run()
    assert outcome.equivalent is None
