"""Experiment harness: suite integrity, the runner, and table rendering."""

import pytest

from repro.experiments import (
    core_suite,
    default_suite,
    format_table,
    render_table1,
    render_table2,
    render_table3,
    run_instance,
)
from repro.experiments.tables import render_check_vs_solve, render_formats_table, render_hybrid_table
from repro.solver import solve_formula


def test_suites_are_nonempty_and_named_uniquely():
    for scale in ("small", "medium", "large"):
        suite = default_suite(scale)
        assert len(suite) >= 8
        names = [i.name for i in suite]
        assert len(set(names)) == len(names)
    assert len(core_suite("small")) >= 4


def test_unknown_scale_rejected():
    with pytest.raises(ValueError):
        default_suite("huge")


@pytest.mark.parametrize("instance", default_suite("small"), ids=lambda i: i.name)
def test_every_small_suite_instance_is_unsat(instance):
    assert solve_formula(instance.build()).is_unsat


@pytest.mark.parametrize("instance", core_suite("small"), ids=lambda i: i.name)
def test_every_small_core_instance_is_unsat(instance):
    assert solve_formula(instance.build()).is_unsat


def test_run_instance_pipeline(tmp_path):
    instance = default_suite("small")[1]  # bw_swap: quick, has learned clauses
    result = run_instance(instance, work_dir=tmp_path)
    assert result.learned_clauses > 0
    assert result.ascii_trace_bytes > result.binary_trace_bytes > 0
    assert result.df is not None and result.df.verified
    assert result.bf is not None and result.bf.verified
    assert result.hybrid is not None and result.hybrid.verified
    assert result.bf.peak_memory_units <= result.df.peak_memory_units
    assert 1.0 < result.compaction_ratio < 5.0
    # Trace files were written into the provided directory.
    assert (tmp_path / f"{instance.name}.trace").exists()


def test_run_instance_with_memory_limit(tmp_path):
    instance = default_suite("small")[-1]  # the hardest small instance
    unlimited = run_instance(instance, work_dir=tmp_path)
    cap = max(unlimited.bf.peak_memory_units + 1, unlimited.df.peak_memory_units // 3)
    limited = run_instance(instance, work_dir=tmp_path, memory_limit=cap)
    assert not limited.df.verified  # DF memory-outs (Table 2's '*')
    assert limited.df.failure.kind.value == "memory-out"
    assert limited.bf.verified  # BF fits


def test_format_table_alignment():
    text = format_table(["a", "bbb"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_renderers_produce_tables(tmp_path):
    results = [run_instance(i, work_dir=tmp_path) for i in default_suite("small")[:3]]
    assert "Table 1" in render_table1(results)
    assert "Table 2" in render_table2(results)
    assert "Compaction" in render_formats_table(results)
    assert "Check time" in render_check_vs_solve(results)
    assert "Hybrid" in render_hybrid_table(results)


def test_render_table3_small():
    text = render_table3(core_suite("small")[:2], max_iterations=3)
    assert "Table 3" in text
    assert "Iterations" in text


def test_run_instance_through_service_client(tmp_path):
    """`--cache` routing: same verdicts, and a repeat run hits the cache."""
    from repro.service import ServiceClient, VerdictCache

    instance = default_suite("small")[1]
    client = ServiceClient(cache=VerdictCache(tmp_path / "cache"))
    (tmp_path / "w1").mkdir()
    (tmp_path / "w2").mkdir()
    first = run_instance(instance, work_dir=tmp_path / "w1", client=client)
    assert first.df.verified and first.bf.verified and first.hybrid.verified
    assert not first.df.from_cache
    assert client.metrics.counter("cache.stores").value == 3

    again = run_instance(instance, work_dir=tmp_path / "w2", client=client)
    assert again.df.from_cache and again.bf.from_cache and again.hybrid.from_cache
    assert client.metrics.counter("cache.hits").value == 3
