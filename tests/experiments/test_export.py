"""Suite export."""

import json

from repro.cnf import parse_dimacs_file
from repro.experiments.export import export_suite
from repro.experiments.__main__ import main as experiments_main
from repro.solver import solve_formula


def test_export_writes_files_and_manifest(tmp_path):
    manifest = export_suite(tmp_path, scale="small")
    assert (tmp_path / "manifest.json").exists()
    on_disk = json.loads((tmp_path / "manifest.json").read_text())
    assert on_disk["scale"] == "small"
    assert len(on_disk["instances"]) == len(manifest["instances"]) >= 10
    names = {entry["name"] for entry in on_disk["instances"]}
    assert len(names) == len(on_disk["instances"])  # unique names


def test_exported_files_parse_and_match_manifest(tmp_path):
    manifest = export_suite(tmp_path, scale="small", include_core_suite=False)
    for entry in manifest["instances"][:3]:
        formula = parse_dimacs_file(tmp_path / entry["file"])
        assert formula.num_clauses == entry["num_clauses"]
        assert formula.num_vars == entry["num_vars"]


def test_exported_instance_still_unsat(tmp_path):
    manifest = export_suite(tmp_path, scale="small", include_core_suite=False)
    smallest = min(manifest["instances"], key=lambda e: e["num_clauses"])
    formula = parse_dimacs_file(tmp_path / smallest["file"])
    assert solve_formula(formula).is_unsat


def test_cli_export_subcommand(tmp_path, capsys):
    code = experiments_main(["export", "--scale", "small", "--out-dir", str(tmp_path / "x")])
    assert code == 0
    assert "exported" in capsys.readouterr().out
    assert (tmp_path / "x" / "manifest.json").exists()
