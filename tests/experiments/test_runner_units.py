"""Unit tests for InstanceResult arithmetic."""

from repro.experiments.runner import InstanceResult


def _result(**overrides):
    base = dict(
        name="x",
        family="f",
        paper_analog="p",
        num_vars=10,
        num_clauses=20,
        learned_clauses=5,
        conflicts=5,
        time_trace_off=2.0,
        time_trace_on=2.2,
        ascii_trace_bytes=3000,
        binary_trace_bytes=1200,
    )
    base.update(overrides)
    return InstanceResult(**base)


def test_overhead_pct():
    assert abs(_result().trace_overhead_pct - 10.0) < 1e-9


def test_overhead_pct_zero_division_guard():
    assert _result(time_trace_off=0.0).trace_overhead_pct == 0.0


def test_compaction_ratio():
    assert abs(_result().compaction_ratio - 2.5) < 1e-9


def test_compaction_ratio_zero_division_guard():
    assert _result(binary_trace_bytes=0).compaction_ratio == 0.0
