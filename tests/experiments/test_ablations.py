"""The ablation table renderer."""

from repro.experiments.ablations import render_ablation_tables
from repro.experiments.__main__ import main as experiments_main


def test_renders_all_four_sections():
    text = render_ablation_tables(scale="small")
    assert "decision heuristic" in text
    assert "minimization" in text
    assert "restart policy" in text
    assert "deletion" in text
    assert "vsids" in text
    assert "jeroslow-wang" in text


def test_cli_subcommand(capsys):
    assert experiments_main(["ablations", "--scale", "small"]) == 0
    assert "Ablation" in capsys.readouterr().out
