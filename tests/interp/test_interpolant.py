"""Craig interpolation: the three interpolant obligations, on many splits."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf import CnfFormula
from repro.interp import compute_interpolant, verify_interpolant
from repro.solver import SolverConfig, solve_formula
from repro.solver.reference import reference_is_satisfiable
from repro.trace import InMemoryTraceWriter

from tests.conftest import pigeonhole, random_3sat, xor_chain


def _trace_of(formula, **kwargs):
    writer = InMemoryTraceWriter()
    result = solve_formula(formula, SolverConfig(**kwargs), trace_writer=writer)
    assert result.is_unsat
    return writer.to_trace()


def test_textbook_example():
    # A = (x)(x -> y) [as (¬x ∨ y)], B = (¬y). Interpolant over {y}: y.
    formula = CnfFormula(2, [[1], [-1, 2], [-2]])
    interpolant = compute_interpolant(formula, _trace_of(formula), a_clause_ids={1, 2})
    assert interpolant.shared_vars == {2}
    assert interpolant.evaluate({2: True}) is True
    assert interpolant.evaluate({2: False}) is False
    assert verify_interpolant(formula, {1, 2}, interpolant)


def test_vars_condition_by_construction():
    formula = pigeonhole(4, 3)
    a_ids = set(range(1, 5))
    interpolant = compute_interpolant(formula, _trace_of(formula), a_ids)
    a_vars = {abs(l) for cid in a_ids for l in formula[cid].literals}
    b_vars = {
        abs(l)
        for cid in range(1, formula.num_clauses + 1)
        if cid not in a_ids
        for l in formula[cid].literals
    }
    assert interpolant.shared_vars == a_vars & b_vars
    assert set(interpolant.input_vars) <= interpolant.shared_vars


def test_all_clauses_in_a_gives_false():
    formula = CnfFormula(1, [[1], [-1]])
    interpolant = compute_interpolant(formula, _trace_of(formula), a_clause_ids={1, 2})
    assert interpolant.evaluate({}) is False
    assert verify_interpolant(formula, {1, 2}, interpolant)


def test_all_clauses_in_b_gives_true():
    formula = CnfFormula(1, [[1], [-1]])
    interpolant = compute_interpolant(formula, _trace_of(formula), a_clause_ids=set())
    assert interpolant.evaluate({}) is True
    assert verify_interpolant(formula, set(), interpolant)


def test_bad_a_partition_rejected():
    formula = CnfFormula(1, [[1], [-1]])
    with pytest.raises(ValueError):
        compute_interpolant(formula, _trace_of(formula), a_clause_ids={99})


@pytest.mark.parametrize("seed", range(6))
def test_random_splits_verify(seed):
    formula = random_3sat(18, 115, seed=3)
    trace = _trace_of(formula)
    rng = random.Random(seed)
    a_ids = {cid for cid in range(1, formula.num_clauses + 1) if rng.random() < 0.5}
    interpolant = compute_interpolant(formula, trace, a_ids)
    assert verify_interpolant(formula, a_ids, interpolant)


def test_pigeonhole_split_verifies():
    formula = pigeonhole(5, 4)
    a_ids = set(range(1, 6))  # the at-least-one-hole clauses
    interpolant = compute_interpolant(formula, _trace_of(formula), a_ids)
    assert verify_interpolant(formula, a_ids, interpolant)


def test_xor_chain_split_verifies():
    formula = xor_chain(9, parity=True)
    half = formula.num_clauses // 2
    a_ids = set(range(1, half + 1))
    interpolant = compute_interpolant(formula, _trace_of(formula), a_ids)
    assert verify_interpolant(formula, a_ids, interpolant)


def test_interpolant_semantic_obligations_by_simulation():
    """Brute-force semantic check on a small instance: every model of A
    satisfies I; no model of B satisfies I."""
    formula = CnfFormula(4, [[1, 2], [-2, 3], [-1, 3], [-3, 4], [-3, -4]])
    assert not reference_is_satisfiable(formula)
    a_ids = {1, 2, 3}
    interpolant = compute_interpolant(formula, _trace_of(formula), a_ids)

    import itertools

    for bits in itertools.product([False, True], repeat=4):
        model = {var: bits[var - 1] for var in range(1, 5)}
        value = interpolant.evaluate(
            {var: model[var] for var in interpolant.input_vars}
        )
        a_formula = formula.restrict_to(a_ids)
        b_formula = formula.restrict_to(
            set(range(1, formula.num_clauses + 1)) - a_ids
        )
        if a_formula.evaluate(model):
            assert value, f"A-model {model} falsifies the interpolant"
        if b_formula.evaluate(model):
            assert not value, f"B-model {model} satisfies the interpolant"


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_interpolation_property_random(data):
    num_vars = data.draw(st.integers(min_value=3, max_value=8))
    lit = st.integers(min_value=-num_vars, max_value=num_vars).filter(lambda x: x != 0)
    clause_lists = data.draw(
        st.lists(st.lists(lit, min_size=1, max_size=3), min_size=4, max_size=30)
    )
    formula = CnfFormula(num_vars, clause_lists)
    if reference_is_satisfiable(formula):
        return  # interpolation needs an UNSAT instance
    trace = _trace_of(formula)
    a_ids = set(
        data.draw(
            st.lists(
                st.integers(min_value=1, max_value=formula.num_clauses),
                unique=True,
                max_size=formula.num_clauses,
            )
        )
    )
    interpolant = compute_interpolant(formula, trace, a_ids)
    assert verify_interpolant(formula, a_ids, interpolant)
