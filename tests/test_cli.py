"""CLI entry points, driven in-process."""

import json

import pytest

from repro.cli import check_main, core_main, lint_trace_main, main, solve_main, trace_stats_main
from repro.cnf import write_dimacs_file
from repro.generators import pigeonhole
from repro.cnf import CnfFormula


@pytest.fixture
def unsat_cnf(tmp_path):
    path = tmp_path / "php.cnf"
    write_dimacs_file(pigeonhole(4, 3), path)
    return path


@pytest.fixture
def sat_cnf(tmp_path):
    path = tmp_path / "sat.cnf"
    write_dimacs_file(CnfFormula(3, [[1, 2], [-1, 3]]), path)
    return path


def test_solve_unsat(unsat_cnf, capsys):
    assert solve_main([str(unsat_cnf)]) == 0
    out = capsys.readouterr().out
    assert "s UNSAT" in out
    assert "conflicts=" in out


def test_solve_sat_prints_model(sat_cnf, capsys):
    assert solve_main([str(sat_cnf)]) == 0
    out = capsys.readouterr().out
    assert "s SAT" in out
    assert out.splitlines()[1].startswith("v ")


def test_solve_budget_unknown(unsat_cnf, capsys):
    assert solve_main([str(unsat_cnf), "--max-conflicts", "1"]) == 1
    assert "s UNKNOWN" in capsys.readouterr().out


@pytest.mark.parametrize("method", ["df", "bf", "hybrid"])
def test_solve_then_check(unsat_cnf, tmp_path, capsys, method):
    trace = tmp_path / "p.trace"
    assert solve_main([str(unsat_cnf), "--trace", str(trace)]) == 0
    assert check_main([str(unsat_cnf), str(trace), "--method", method]) == 0
    assert "Check Succeeded" in capsys.readouterr().out


def test_binary_trace_roundtrip(unsat_cnf, tmp_path, capsys):
    trace = tmp_path / "p.rtb"
    assert solve_main([str(unsat_cnf), "--trace", str(trace), "--trace-format", "binary"]) == 0
    assert check_main([str(unsat_cnf), str(trace), "--method", "bf"]) == 0


def test_check_rejects_mismatched_formula(unsat_cnf, sat_cnf, tmp_path, capsys):
    trace = tmp_path / "p.trace"
    solve_main([str(unsat_cnf), "--trace", str(trace)])
    assert check_main([str(sat_cnf), str(trace)]) == 1
    assert "Check Failed" in capsys.readouterr().out


@pytest.mark.parametrize("engine", ["kernel", "reference"])
def test_check_engine_selection(unsat_cnf, tmp_path, capsys, engine):
    trace = tmp_path / "trace.txt"
    assert solve_main([str(unsat_cnf), "--trace", str(trace)]) == 0
    assert check_main([str(unsat_cnf), str(trace), "--engine", engine]) == 0
    assert "Check Succeeded" in capsys.readouterr().out


def test_check_profile_emits_hot_functions(unsat_cnf, tmp_path, capsys):
    trace = tmp_path / "trace.txt"
    assert solve_main([str(unsat_cnf), "--trace", str(trace)]) == 0
    assert check_main([str(unsat_cnf), str(trace), "--profile"]) == 0
    captured = capsys.readouterr()
    assert "Check Succeeded" in captured.out
    # The cProfile table goes to stderr so the report stays parseable.
    assert "cumtime" in captured.err


def test_check_show_core(unsat_cnf, tmp_path, capsys):
    trace = tmp_path / "p.trace"
    solve_main([str(unsat_cnf), "--trace", str(trace)])
    assert check_main([str(unsat_cnf), str(trace), "--show-core"]) == 0
    assert "core clause ids:" in capsys.readouterr().out


def test_drup_and_rup_check(unsat_cnf, tmp_path, capsys):
    proof = tmp_path / "p.drup"
    assert solve_main([str(unsat_cnf), "--drup", str(proof)]) == 0
    assert check_main([str(unsat_cnf), str(proof), "--method", "rup"]) == 0
    assert "Check Succeeded" in capsys.readouterr().out


def test_solve_validate_flag(unsat_cnf, sat_cnf, capsys):
    assert solve_main([str(unsat_cnf), "--validate"]) == 0
    assert "proof validated" in capsys.readouterr().out
    assert solve_main([str(sat_cnf), "--validate"]) == 0


def test_trim_cli(unsat_cnf, tmp_path, capsys):
    from repro.cli import trim_main

    trace = tmp_path / "p.trace"
    solve_main([str(unsat_cnf), "--trace", str(trace)])
    trimmed = tmp_path / "trimmed.trace"
    assert trim_main([str(unsat_cnf), str(trace), str(trimmed)]) == 0
    assert "kept" in capsys.readouterr().out
    assert check_main([str(unsat_cnf), str(trimmed), "--method", "hybrid"]) == 0


def test_core_cli(unsat_cnf, capsys):
    assert core_main([str(unsat_cnf), "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "input:" in out
    assert "core clause ids:" in out


def test_trace_stats_cli(unsat_cnf, tmp_path, capsys):
    trace = tmp_path / "p.trace"
    solve_main([str(unsat_cnf), "--trace", str(trace)])
    assert trace_stats_main([str(trace)]) == 0
    assert "learned clauses" in capsys.readouterr().out


@pytest.fixture
def clean_trace(unsat_cnf, tmp_path):
    trace = tmp_path / "p.trace"
    solve_main([str(unsat_cnf), "--trace", str(trace)])
    return trace


def test_lint_trace_accepts_clean_trace(clean_trace, capsys):
    assert lint_trace_main([str(clean_trace)]) == 0
    out = capsys.readouterr().out
    assert "[lint] clean" in out
    assert "reachability" in out


def test_lint_trace_flags_corrupted_trace(clean_trace, tmp_path, capsys):
    lines = clean_trace.read_text().splitlines()
    broken = tmp_path / "broken.trace"
    broken.write_text("\n".join(line for line in lines if not line.startswith("CONF")) + "\n")
    assert lint_trace_main([str(broken)]) == 1
    out = capsys.readouterr().out
    assert "T007" in out and "error" in out


def test_lint_trace_json_output(clean_trace, capsys):
    assert lint_trace_main([str(clean_trace), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["streaming"] is True
    assert payload["num_learned"] > 0


def test_lint_trace_rule_filter_and_no_reachability(clean_trace, capsys):
    assert lint_trace_main([str(clean_trace), "--rules", "T001,T005", "--no-reachability"]) == 0
    assert "reachability" not in capsys.readouterr().out


def test_lint_trace_binary_format(unsat_cnf, tmp_path):
    trace = tmp_path / "p.rtb"
    solve_main([str(unsat_cnf), "--trace", str(trace), "--trace-format", "binary"])
    assert lint_trace_main([str(trace)]) == 0


def test_repro_umbrella_dispatch(clean_trace, unsat_cnf, capsys):
    assert main(["lint-trace", str(clean_trace)]) == 0
    assert main(["check", str(unsat_cnf), str(clean_trace), "--precheck"]) == 0
    assert "Check Succeeded" in capsys.readouterr().out
    assert main(["no-such-command"]) == 2
    assert main([]) == 2
    assert main(["--help"]) == 0


def test_check_precheck_fails_fast_on_garbage(unsat_cnf, clean_trace, tmp_path, capsys):
    lines = clean_trace.read_text().splitlines()
    broken = tmp_path / "broken.trace"
    broken.write_text("\n".join(line for line in lines if not line.startswith("CONF")) + "\n")
    assert check_main([str(unsat_cnf), str(broken), "--method", "bf", "--precheck"]) == 1
    out = capsys.readouterr().out
    assert "static-precheck" in out


# -- the derivation-graph surface ---------------------------------------------


def test_analyze_text_output(clean_trace, capsys):
    from repro.cli import analyze_main

    assert analyze_main([str(clean_trace)]) == 0
    out = capsys.readouterr().out
    assert "core:" in out
    assert "dag:" in out
    assert "status UNSAT" in out


def test_analyze_json_output(clean_trace, capsys):
    from repro.cli import analyze_main

    assert analyze_main([str(clean_trace), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["schema_version"] == 1
    assert payload["graph"]["core_learned"] > 0
    assert payload["graph"]["prunable"] is True


def test_analyze_flags_broken_trace(clean_trace, tmp_path, capsys):
    lines = clean_trace.read_text().splitlines()
    broken = tmp_path / "broken.trace"
    broken.write_text(
        "\n".join(line for line in lines if not line.startswith("CONF")) + "\n"
    )
    from repro.cli import analyze_main

    assert analyze_main([str(broken)]) == 1
    assert "T007" in capsys.readouterr().out


def test_lint_trace_graph_flag_reports_dead_lemmas(tmp_path, capsys):
    trace = tmp_path / "dead.trace"
    trace.write_text(
        "T 3 3\n"
        "CL 4 1 2\n"
        "CL 5 4 3\n"
        "CL 6 5 1\n"  # never reaches the final conflict: a dead lemma
        "V 1 1 4\n"
        "CONF 5\n"
        "R UNSAT\n"
    )
    assert lint_trace_main([str(trace)]) == 0
    assert "T013" not in capsys.readouterr().out
    assert lint_trace_main([str(trace), "--graph"]) == 0  # info severity
    out = capsys.readouterr().out
    assert "T013" in out
    assert "graph:" in out  # the DAG summary line rides along


def test_check_prune_flag(unsat_cnf, clean_trace, capsys):
    for method in ("df", "bf", "hybrid"):
        assert (
            check_main(
                [str(unsat_cnf), str(clean_trace), "--method", method, "--prune"]
            )
            == 0
        )
        assert "Check Succeeded" in capsys.readouterr().out


def test_check_prune_rejects_plain_rup(unsat_cnf, clean_trace):
    with pytest.raises(SystemExit):
        check_main(
            [str(unsat_cnf), str(clean_trace), "--method", "rup", "--prune"]
        )


def test_trim_verify_cli(unsat_cnf, clean_trace, tmp_path, capsys):
    from repro.cli import trim_main

    trimmed = tmp_path / "trimmed.trace"
    assert trim_main([str(unsat_cnf), str(clean_trace), str(trimmed), "--verify"]) == 0
    assert "deletions kept" in capsys.readouterr().out
    assert check_main([str(unsat_cnf), str(trimmed), "--method", "bf"]) == 0


def test_umbrella_knows_analyze(clean_trace, capsys):
    assert main(["analyze", str(clean_trace)]) == 0
    assert "core:" in capsys.readouterr().out
