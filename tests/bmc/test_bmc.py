"""BMC substrate: transition systems, unrolling, known reachability facts."""

import pytest

from repro.bmc import TransitionSystem, bmc_cnf, counter_system, lfsr_system, token_ring_system, unroll
from repro.circuits import Circuit
from repro.solver import solve_formula


class TestTransitionSystemValidation:
    def _bad_circuit(self, bits):
        bad = Circuit()
        ins = bad.add_inputs(bits)
        bad.mark_output(bad.and_(*ins) if bits > 1 else bad.buf(ins[0]))
        return bad

    def test_arity_checks(self):
        transition = Circuit()
        a, b = transition.add_inputs(2)
        transition.mark_output(transition.buf(a))
        transition.mark_output(transition.buf(b))
        with pytest.raises(ValueError):
            TransitionSystem(3, 0, [], transition, self._bad_circuit(3))
        with pytest.raises(ValueError):
            TransitionSystem(2, 1, [], transition, self._bad_circuit(2))

    def test_init_literal_range(self):
        transition = Circuit()
        a = transition.add_input()
        transition.mark_output(transition.buf(a))
        with pytest.raises(ValueError):
            TransitionSystem(1, 0, [[2]], transition, self._bad_circuit(1))


class TestCounter:
    def test_unreachable_within_bound(self):
        system = counter_system(4, bad_value=10)
        assert solve_formula(bmc_cnf(system, 9)).is_unsat

    def test_reachable_at_bound(self):
        system = counter_system(4, bad_value=10)
        assert solve_formula(bmc_cnf(system, 10)).is_sat

    def test_enabled_counter_same_reachability(self):
        system = counter_system(4, bad_value=6, with_enable=True)
        assert solve_formula(bmc_cnf(system, 5)).is_unsat
        assert solve_formula(bmc_cnf(system, 6)).is_sat

    def test_enabled_counter_requires_search(self):
        system = counter_system(5, bad_value=12, with_enable=True)
        result = solve_formula(bmc_cnf(system, 11))
        assert result.is_unsat
        assert result.stats.conflicts > 0  # not a pure BCP refutation

    def test_validation(self):
        with pytest.raises(ValueError):
            counter_system(0)
        with pytest.raises(ValueError):
            counter_system(3, bad_value=0)
        with pytest.raises(ValueError):
            counter_system(3, bad_value=8)


class TestTokenRing:
    @pytest.mark.parametrize("size,bound", [(3, 5), (5, 7)])
    def test_invariant_holds(self, size, bound):
        assert solve_formula(bmc_cnf(token_ring_system(size), bound)).is_unsat

    def test_validation(self):
        with pytest.raises(ValueError):
            token_ring_system(1)


class TestLfsr:
    def test_never_reaches_zero(self):
        assert solve_formula(bmc_cnf(lfsr_system(5), 10)).is_unsat

    def test_nondeterministic_seed_needs_search(self):
        result = solve_formula(bmc_cnf(lfsr_system(8), 12))
        assert result.is_unsat
        assert result.stats.conflicts > 0

    def test_concrete_seed_variant(self):
        system = lfsr_system(5, any_nonzero_seed=False)
        assert solve_formula(bmc_cnf(system, 8)).is_unsat

    def test_validation(self):
        with pytest.raises(ValueError):
            lfsr_system(1)
        with pytest.raises(ValueError):
            lfsr_system(4, taps=(3,))  # tap on the shifted-out bit itself


class TestUnroll:
    def test_state_vars_per_step(self):
        system = counter_system(3, bad_value=5)
        formula, state_vars = unroll(system, 4)
        assert len(state_vars) == 5
        assert all(len(step) == 3 for step in state_vars)
        flattened = [v for step in state_vars for v in step]
        assert len(set(flattened)) == len(flattened)  # all distinct

    def test_zero_steps(self):
        system = counter_system(3, bad_value=5)
        formula, state_vars = unroll(system, 0)
        assert len(state_vars) == 1

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            unroll(counter_system(2, bad_value=1), -1)
