#!/usr/bin/env python
"""Generate arbitrarily large synthetic UNSAT instances with binary traces.

The streaming checker's whole point is traces too big to hold in memory, so
this generator never builds a :class:`~repro.trace.records.Trace`: both the
DIMACS file and the RTB1 trace are written record-by-record through buffered
file handles, keeping the generator itself O(1) in the instance size.

The family is a *chain with hubs*, sized by ``--chain N``:

* Originals (IDs 1..N+1): ``(x1)``, then ``(-x_{i-1} v x_i)`` for i=2..N,
  then ``(-x_N)``. Classic implication chain, UNSAT.
* Chain lemmas L_k = ``(x_{k+1})`` for k=1..N-1, each resolved from the
  previous lemma (or original 1) and original k+1. Every lemma's *next*
  use is immediate, so a last-use-aware resident set stays tiny.
* Hub lemmas: every ``--hub-every``-th chain lemma is re-derived *again*
  at the very end of the learned section, referencing the early lemma
  directly. Those long-range uses force a naive checker to keep O(N /
  hub_every) clauses resident across the whole trace — exactly the
  pressure the shifting-window checker is built to shed by spilling.
* Level-zero trail x_1..x_N (antecedent: original i) and final conflict
  on original N+1 close the refutation.

Checkers verify these instances end-to-end (the derivations are real
resolutions, not placeholders), so the same files also serve the parity
and fault-injection test suites as large fixtures.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.trace.binary_format import BinaryTraceWriter  # noqa: E402


def write_chain_cnf(path: str | Path, chain: int) -> None:
    """DIMACS for the implication chain: N vars, N+1 clauses."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"c chain+hub UNSAT instance, chain={chain}\n")
        handle.write(f"p cnf {chain} {chain + 1}\n")
        handle.write("1 0\n")
        for i in range(2, chain + 1):
            handle.write(f"-{i - 1} {i} 0\n")
        handle.write(f"-{chain} 0\n")


def write_chain_trace(path: str | Path, chain: int, hub_every: int = 10) -> dict:
    """Stream the chain+hub refutation trace to ``path`` (RTB1 binary).

    Returns a small stats dict (records written, hub count) so callers
    can report what they generated without re-scanning the file.
    """
    if chain < 3:
        raise ValueError("chain length must be at least 3")
    if hub_every < 1:
        raise ValueError("hub_every must be at least 1")
    num_original = chain + 1
    learned = 0
    with BinaryTraceWriter(path) as writer:
        writer.header(chain, num_original)
        # Chain lemmas: L_k = (x_{k+1}), cid = num_original + k.
        first_lemma = num_original + 1
        for k in range(1, chain):
            cid = num_original + k
            prev = 1 if k == 1 else cid - 1
            writer.learned_clause(cid, (prev, k + 1))
            learned += 1
        # Hub lemmas: re-derive (x_{j+2}) from the *early* lemma L_j at the
        # tail of the learned section. Sources reference far back.
        next_cid = num_original + chain
        hubs = 0
        for j in range(1, chain - 1, hub_every):
            writer.learned_clause(next_cid, (num_original + j, j + 2))
            next_cid += 1
            hubs += 1
            learned += 1
        for i in range(1, chain + 1):
            writer.level_zero(i, True, i)
        writer.final_conflict(num_original)
        writer.result("UNSAT")
    return {
        "chain": chain,
        "num_vars": chain,
        "num_original": num_original,
        "num_learned": learned,
        "num_hubs": hubs,
    }


def generate(prefix: str | Path, chain: int, hub_every: int = 10) -> dict:
    """Write ``<prefix>.cnf`` and ``<prefix>.rtb``; return the stats dict."""
    prefix = Path(prefix)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    cnf_path = prefix.with_suffix(".cnf")
    trace_path = prefix.with_suffix(".rtb")
    write_chain_cnf(cnf_path, chain)
    stats = write_chain_trace(trace_path, chain, hub_every)
    stats["cnf"] = str(cnf_path)
    stats["trace"] = str(trace_path)
    stats["trace_bytes"] = trace_path.stat().st_size
    return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("prefix", help="output prefix (writes PREFIX.cnf, PREFIX.rtb)")
    parser.add_argument(
        "--chain", type=int, default=20000, help="chain length N (default 20000)"
    )
    parser.add_argument(
        "--hub-every",
        type=int,
        default=10,
        help="emit a long-range hub lemma for every K-th chain lemma (default 10)",
    )
    args = parser.parse_args(argv)
    stats = generate(args.prefix, args.chain, args.hub_every)
    print(
        f"wrote {stats['cnf']} ({stats['num_vars']} vars, "
        f"{stats['num_original']} clauses) and {stats['trace']} "
        f"({stats['num_learned']} learned, {stats['num_hubs']} hubs, "
        f"{stats['trace_bytes']} bytes)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
