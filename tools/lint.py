#!/usr/bin/env python
"""`make lint`: ruff + mypy when installed, a self-contained fallback otherwise.

Offline environments (including the CI container this repo grew up in) may
not ship ruff or mypy. Rather than letting `make lint` rot into a no-op, the
fallback implements the subset of checks the ruff config selects that can be
done reliably with the stdlib `ast` module:

* syntax errors (E9, via compile)
* F401  unused imports (module and function scope)
* F841  unused local variables (simple single-target assignments only)
* E711  comparisons to None with ==/!=
* E722  bare except
* E741  ambiguous single-letter names (l, O, I)

When ruff/mypy ARE installed (e.g. in GitHub Actions), they run with the
configuration in pyproject.toml and the fallback stays out of the way.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGET = REPO_ROOT / "src" / "repro"


def run_external(tool: str, *args: str) -> int:
    print(f"[lint] running {tool} {' '.join(args)}")
    return subprocess.run([tool, *args], cwd=REPO_ROOT).returncode


class FallbackChecker(ast.NodeVisitor):
    """Single-file pyflakes-lite; collects (lineno, code, message)."""

    def __init__(self, tree: ast.AST):
        self.tree = tree
        self.problems: list[tuple[int, str, str]] = []

    def check(self) -> list[tuple[int, str, str]]:
        self._check_unused_imports()
        self._check_functions()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if (
                        isinstance(op, (ast.Eq, ast.NotEq))
                        and isinstance(comparator, ast.Constant)
                        and comparator.value is None
                    ):
                        self.problems.append(
                            (node.lineno, "E711", "comparison to None (use `is`)")
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                self.problems.append((node.lineno, "E722", "bare except"))
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Store)
                and node.id in ("l", "O", "I")
            ):
                self.problems.append(
                    (node.lineno, "E741", f"ambiguous variable name {node.id!r}")
                )
        return sorted(self.problems)

    def _loaded_names(self, root: ast.AST) -> set[str]:
        loaded: set[str] = set()
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
                loaded.add(node.id)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                loaded.add(node.target.id)  # `x += 1` reads x
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                loaded.update(node.names)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                loaded.add(node.value)  # string annotations, __all__ entries
        return loaded

    def _check_unused_imports(self) -> None:
        loaded = self._loaded_names(self.tree)
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                aliases = [(a, (a.asname or a.name).split(".")[0]) for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module != "__future__":
                aliases = [(a, a.asname or a.name) for a in node.names]
            else:
                continue
            for alias, bound in aliases:
                if bound != "*" and bound not in loaded:
                    self.problems.append(
                        (node.lineno, "F401", f"unused import {alias.name!r}")
                    )

    def _check_functions(self) -> None:
        for fn in ast.walk(self.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            loaded = self._loaded_names(fn)
            loop_targets = {
                n.id
                for loop in ast.walk(fn)
                if isinstance(loop, (ast.For, ast.AsyncFor, ast.comprehension))
                for n in ast.walk(loop.target)
                if isinstance(n, ast.Name)
            }
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and not target.id.startswith("_")
                    and target.id not in loaded
                    and target.id not in loop_targets
                ):
                    self.problems.append(
                        (
                            node.lineno,
                            "F841",
                            f"local variable {target.id!r} assigned but never used",
                        )
                    )


def fallback_lint() -> int:
    print("[lint] ruff not installed; using the stdlib fallback linter")
    failures = 0
    for path in sorted(TARGET.rglob("*.py")):
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            print(f"{path}:{exc.lineno}: E999 syntax error: {exc.msg}")
            failures += 1
            continue
        problems = FallbackChecker(tree).check()
        if path.name == "__init__.py":  # mirror the ruff per-file-ignores
            problems = [p for p in problems if p[1] != "F401"]
        for lineno, code, message in problems:
            print(f"{path.relative_to(REPO_ROOT)}:{lineno}: {code} {message}")
            failures += 1
    if failures:
        print(f"[lint] fallback linter: {failures} problem(s)")
        return 1
    print("[lint] fallback linter: clean")
    return 0


def main() -> int:
    status = 0
    if shutil.which("ruff"):
        status |= run_external("ruff", "check", "src/repro")
    else:
        status |= fallback_lint()
    if shutil.which("mypy"):
        status |= run_external("mypy", "--config-file", "pyproject.toml")
        # The analysis package is held to a higher bar: fully annotated,
        # strict-clean (it is the youngest subsystem — keep it that way).
        # --follow-imports=silent keeps the strictness scoped to the package:
        # imported repro.trace/repro.checker modules are still analyzed for
        # their annotations but not reported against.
        status |= run_external(
            "mypy", "--strict", "--follow-imports=silent", "src/repro/analysis"
        )
    else:
        print("[lint] mypy not installed; skipping type check")
    return status


if __name__ == "__main__":
    sys.exit(main())
