#!/usr/bin/env python
"""Generate UNSAT instances with DRAT proofs, drat-trim style.

The family is built from variable-disjoint blocks so every property the
test suite needs is by construction, not by luck:

* **Core blocks** (``--core N``, N >= 2): one guard unit ``(s)`` plus,
  for each k, fresh vars x_k, c_k and the guarded pair
  ``(-s v x_k v c_k)``, ``(-s v x_k v -c_k)``; a wide pair
  ``(-x_1 v ... v -x_N v u)``, ``(-x_1 v ... v -x_N v -u)`` ties the
  blocks together. The proof derives the unit lemma ``(x_k)`` from each
  guarded pair (RUP: assuming -x_k, the guard propagates s and the pair
  yields c_k, -c_k), then the empty clause via the wide pair. Every core
  lemma is in the empty clause's dependency cone, so backward checking
  keeps all of them.
* **Dead blocks** (``--dead N``): pairs ``(p v q)``, ``(p v -q)`` on
  fresh vars; the derived unit lemma ``(p)`` is never used again —
  forward checking verifies it, backward checking skips it. This is the
  realistic shape: solvers learn far more than the refutation needs.
* **RAT gadgets** (``--rat N``): fresh vars x, b, q, t with clauses
  ``(-x v b)``, ``(-x v q)``, ``(-b v q)``, ``(x v t)``. The lemma
  ``(x v -b)`` is *not* RUP (assuming -x, b propagates no conflict) but
  is RAT on pivot x: the resolvent with ``(-x v b)`` is a tautology and
  the resolvent with ``(-x v q)``, namely ``(-b v q)``, is RUP. A
  checker without the RAT fallback must reject these proofs.
* **Deletions** (``--deletions``): each dead lemma is deleted again right
  after the next add step, exercising drat-trim deletion semantics.

Single-literal flip robustness — *forward* checking rejects the proof
with any single literal of any **add** step flipped:

* A flipped core lemma ``(-x_k)`` with k < N is neither RUP (assuming
  x_k propagates nothing through other blocks; the wide clauses keep at
  least two free literals) nor RAT (the resolvent ``(-s v c_k)`` with
  its own guarded pair is not RUP for the same reason).
* The *last* core lemma is special: flipping it is unavoidably RUP at
  its own position (denying it reproduces exactly the propagation state
  of the final empty-clause check). The proof therefore deletes
  ``(-s v x_N v c_N)`` right after deriving ``(x_N)`` — the flipped
  lemma satisfies both wide clauses and the surviving half-pair no
  longer conflicts, so the empty clause fails and the *proof* is still
  rejected. This is also why every dead/RAT lemma precedes the last core
  lemma: once the database is UP-refutable, any later step (and any
  corruption of it) would check out trivially.
* Flipped dead and RAT-gadget lemmas fail both RUP and RAT inside their
  own variable-disjoint block.

Backward checking skips dead lemmas by design (drat-trim's -b does the
same), so it accepts a flip of a lemma outside the core while still
rejecting every core flip; the flip matrix asserts exactly that split.

Also provides byte-level corruption modes (``corruptions()``) for the
malformed-proof matrix: truncated varints, missing terminators, bogus
tags, a dropped empty clause.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.proofs.parser import open_proof_writer  # noqa: E402


@dataclass
class DratInstance:
    """One generated instance: DIMACS clauses plus the proof's steps."""

    num_vars: int
    clauses: list[list[int]] = field(default_factory=list)
    # ("add" | "delete", literals); the final ("add", []) is the empty clause.
    steps: list[tuple[str, list[int]]] = field(default_factory=list)
    core_lemmas: int = 0
    dead_lemmas: int = 0
    rat_lemmas: int = 0
    # Ordinals (among non-empty add steps, 0-based) of the core lemmas —
    # the ones backward checking must keep and whose flips it must reject.
    core_ordinals: list[int] = field(default_factory=list)

    @property
    def num_adds(self) -> int:
        return sum(1 for kind, lits in self.steps if kind == "add" and lits)

    def write_cnf(self, path: str | Path) -> None:
        with open(path, "w", encoding="ascii") as handle:
            handle.write(f"c gen_drat instance: core={self.core_lemmas} "
                         f"dead={self.dead_lemmas} rat={self.rat_lemmas}\n")
            handle.write(f"p cnf {self.num_vars} {len(self.clauses)}\n")
            for clause in self.clauses:
                handle.write(" ".join(map(str, clause)) + " 0\n")

    def write_proof(self, path: str | Path, fmt: str = "text") -> None:
        with open_proof_writer(path, fmt) as writer:
            for kind, literals in self.steps:
                if kind == "delete":
                    writer.delete_clause(literals)
                elif literals:
                    writer.add_clause(literals)
                else:
                    writer.finish_unsat()


def generate(
    core: int = 4, dead: int = 8, rat: int = 2, deletions: bool = False
) -> DratInstance:
    """Build one instance; fully deterministic in its arguments."""
    if core < 2:
        raise ValueError("need at least 2 core blocks for flip robustness")
    inst = DratInstance(num_vars=0)
    next_var = 1

    def fresh() -> int:
        nonlocal next_var
        var = next_var
        next_var += 1
        return var

    guard = fresh()
    inst.clauses.append([guard])
    core_vars = []
    core_pairs = []
    for _ in range(core):
        x, c = fresh(), fresh()
        core_vars.append(x)
        core_pairs.append(([-guard, x, c], [-guard, x, -c]))
        inst.clauses += core_pairs[-1]
    u = fresh()
    inst.clauses.append([-x for x in core_vars] + [u])
    inst.clauses.append([-x for x in core_vars] + [-u])

    dead_steps: list[tuple[str, list[int]]] = []
    for _ in range(dead):
        p, q = fresh(), fresh()
        inst.clauses += [[p, q], [p, -q]]
        dead_steps.append(("add", [p]))
        if deletions:
            dead_steps.append(("delete", [p]))

    rat_steps: list[tuple[str, list[int]]] = []
    for _ in range(rat):
        x, b, q, t = fresh(), fresh(), fresh(), fresh()
        inst.clauses += [[-x, b], [-x, q], [-b, q], [x, t]]
        rat_steps.append(("add", [x, -b]))

    # Interleave: RAT lemmas first, dead lemmas between the core lemmas
    # (so the backward pass genuinely walks past skippable work), and the
    # last core lemma strictly last — once it lands the database is
    # UP-refutable and any later lemma's flip would check out trivially.
    steps: list[tuple[str, list[int]]] = []
    steps += rat_steps
    per_core = max(1, len(dead_steps) // core) if dead_steps else 0
    cursor = 0
    core_ordinals: list[int] = []

    def adds_so_far() -> int:
        return sum(1 for kind, lits in steps if kind == "add" and lits)

    for x in core_vars[:-1]:
        steps += dead_steps[cursor:cursor + per_core]
        cursor += per_core
        core_ordinals.append(adds_so_far())
        steps.append(("add", [x]))
    steps += dead_steps[cursor:]
    core_ordinals.append(adds_so_far())
    steps.append(("add", [core_vars[-1]]))
    # Disarm the last block's refutation of {s, -x_N}: with the half-pair
    # gone, a flipped final lemma no longer re-creates a conflict at the
    # empty-clause step (see module docstring).
    steps.append(("delete", core_pairs[-1][0]))
    steps.append(("add", []))

    inst.steps = steps
    inst.num_vars = next_var - 1
    inst.core_lemmas = core
    inst.dead_lemmas = dead
    inst.rat_lemmas = rat
    inst.core_ordinals = core_ordinals
    return inst


# -- corruption modes ----------------------------------------------------------


def _flip_first_literal(data: bytes, fmt: str) -> bytes:
    if fmt == "text":
        lines = data.decode("ascii").splitlines(keepends=True)
        for i, line in enumerate(lines):
            tokens = line.split()
            if tokens and tokens[0] not in ("d", "c", "0"):
                tokens[0] = str(-int(tokens[0]))
                lines[i] = " ".join(tokens) + "\n"
                return "".join(lines).encode("ascii")
        return data
    # Binary: the first step's first literal varint follows the tag. A
    # single-byte varint flips sign by toggling the low bit.
    out = bytearray(data)
    if len(out) >= 2 and not out[1] & 0x80 and out[1] > 1:
        out[1] ^= 1
        return bytes(out)
    return bytes(out)


def _drop_terminator(data: bytes, fmt: str) -> bytes:
    if fmt == "text":
        text = data.decode("ascii")
        # Remove the final "0" terminator of the first add line.
        return text.replace(" 0\n", " \n", 1).encode("ascii")
    # Binary: strip the trailing 0x00 of the last step.
    return data[:-1]


def _bogus_tag(data: bytes, fmt: str) -> bytes:
    if fmt == "text":
        return b"x 1 2 0\n" + data
    return bytes([0x62]) + data  # 'b' is neither 'a' nor 'd'


def _truncate_varint(data: bytes, fmt: str) -> bytes:
    # The checker stops at the empty clause (drat-trim does too), so the
    # truncation must replace it, not follow it.
    if fmt == "text":
        text = data.decode("ascii")
        # Swap the final empty clause for an unterminated clause line.
        return text.replace("\n0\n", "\n99 7").encode("ascii")
    # Binary: swap the empty step for one whose literal varint promises a
    # continuation byte that never comes.
    return data[:-2] + bytes([0x61, 0x80])


def _drop_empty_clause(data: bytes, fmt: str) -> bytes:
    # Dropping only the trailing empty clause is not enough: the checker
    # accepts an implicit empty clause when the final database conflicts
    # (drat-trim does too). Drop the last lemma as well, so propagation
    # at end-of-proof finds no conflict and the verdict is "not-empty".
    if fmt == "text":
        lines = data.decode("ascii").splitlines()
        lines.remove("0")
        adds = [i for i, line in enumerate(lines) if not line.startswith("d ")]
        del lines[adds[-1]]
        return ("\n".join(lines) + "\n").encode("ascii")
    # Binary: literal 0 never appears inside a step, so every 0x00 byte
    # is a step terminator; the final empty clause is the trailing "a 0".
    steps = data[:-2].rstrip(bytes([0x00])).split(bytes([0x00]))
    adds = [i for i, step in enumerate(steps) if step[:1] == bytes([0x61])]
    del steps[adds[-1]]
    return bytes([0x00]).join(steps) + bytes([0x00])


#: name -> corruption function (proof bytes, fmt) -> corrupted bytes.
#: Every corrupted proof must be rejected by the DRAT checker — either as
#: MALFORMED_PROOF, a failed RUP/RAT check, or NOT_EMPTY.
CORRUPTIONS = {
    "flip-literal": _flip_first_literal,
    "drop-terminator": _drop_terminator,
    "bogus-tag": _bogus_tag,
    "truncate-varint": _truncate_varint,
    "drop-empty": _drop_empty_clause,
}


def corruptions(proof_path: str | Path, fmt: str):
    """Yield (name, corrupted_bytes) for every corruption mode."""
    data = Path(proof_path).read_bytes()
    for name, corrupt in CORRUPTIONS.items():
        yield name, corrupt(data, fmt)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gen_drat", description="generate an UNSAT instance + DRAT proof"
    )
    parser.add_argument("cnf", help="write the DIMACS file here")
    parser.add_argument("proof", help="write the DRAT proof here")
    parser.add_argument("--core", type=int, default=4,
                        help="core blocks the refutation needs (default 4)")
    parser.add_argument("--dead", type=int, default=8,
                        help="dead lemmas backward checking skips (default 8)")
    parser.add_argument("--rat", type=int, default=2,
                        help="genuine (non-RUP) RAT lemmas (default 2)")
    parser.add_argument("--format", default="text", choices=["text", "binary"])
    parser.add_argument("--deletions", action="store_true",
                        help="delete each dead lemma after the next add step")
    parser.add_argument("--corrupt", default=None, choices=sorted(CORRUPTIONS),
                        help="apply one corruption mode to the proof bytes")
    args = parser.parse_args(argv)

    inst = generate(core=args.core, dead=args.dead, rat=args.rat,
                    deletions=args.deletions)
    inst.write_cnf(args.cnf)
    inst.write_proof(args.proof, args.format)
    if args.corrupt:
        data = dict(corruptions(args.proof, args.format))[args.corrupt]
        Path(args.proof).write_bytes(data)
    print(f"vars={inst.num_vars} clauses={len(inst.clauses)} "
          f"adds={inst.num_adds} (core={inst.core_lemmas} "
          f"dead={inst.dead_lemmas} rat={inst.rat_lemmas}) "
          f"format={args.format}"
          + (f" corrupt={args.corrupt}" if args.corrupt else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
