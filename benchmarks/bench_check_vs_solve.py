"""§4 remark: "the actual time needed to check a proof is always
significantly smaller compared with the time needed to perform the actual
proof."

Benchmarks solving and checking side by side per instance and asserts the
ratio stays below 1 on the harder instances.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import bench_suite
from repro.checker import DepthFirstChecker
from repro.solver import Solver, SolverConfig

NAMES = [instance.name for instance in bench_suite()]


@pytest.mark.parametrize("name", NAMES)
def test_solve(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        return Solver(prepared.formula, SolverConfig()).solve()

    benchmark.group = f"check-vs-solve:{name}"
    benchmark(run)


@pytest.mark.parametrize("name", NAMES)
def test_check(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        report = DepthFirstChecker(prepared.formula, prepared.trace).check()
        assert report.verified
        return report

    benchmark.group = f"check-vs-solve:{name}"
    benchmark(run)


def test_checking_cheaper_than_solving_on_hard_instances(prepared_instances):
    """Timing-shape assertion: on instances that take meaningful solve
    time, checking costs a fraction of solving (the paper's headline)."""
    checked = 0
    for prepared in prepared_instances.values():
        solve_start = time.perf_counter()
        Solver(prepared.formula, SolverConfig()).solve()
        solve_time = time.perf_counter() - solve_start
        if solve_time < 0.05:
            continue  # too fast to compare meaningfully
        report = DepthFirstChecker(prepared.formula, prepared.trace).check()
        assert report.verified
        checked += 1
        assert report.check_time < solve_time, (
            f"{prepared.name}: check {report.check_time:.3f}s >= "
            f"solve {solve_time:.3f}s"
        )
    assert checked >= 1, "no instance was slow enough to compare; raise the scale"
