"""Ablation: the Davis-Putnam resolution baseline vs the CDCL engine.

§1 of the paper: DP "is hard to use in practice due to prohibitive space
requirements, and over the years has given way to search algorithms based
on DLL". This bench quantifies both halves of that sentence — runtime and
peak clause count — on the same instances.
"""

from __future__ import annotations

import pytest

from repro.generators import pigeonhole, random_ksat
from repro.resolution import davis_putnam
from repro.solver import Solver, SolverConfig

# DP's space appetite is the whole point, so the benchmark caps it: on the
# random instance an *uncapped* run blows past 10^5 clauses and minutes of
# work (we measured it), which is exactly the behaviour the paper cites —
# but a benchmark has to terminate, so UNKNOWN-at-the-cap counts as data.
DP_CLAUSE_LIMIT = 50_000

INSTANCES = [
    ("php54", lambda: pigeonhole(5, 4)),
    ("php65", lambda: pigeonhole(6, 5)),
    ("ksat18", lambda: random_ksat(18, 80, seed=3)),
]


@pytest.mark.parametrize("name,factory", INSTANCES, ids=[n for n, _ in INSTANCES])
def test_davis_putnam(benchmark, name, factory):
    formula = factory()

    def run():
        return davis_putnam(formula, clause_limit=DP_CLAUSE_LIMIT)

    benchmark.group = f"dp-vs-cdcl:{name}"
    result = benchmark(run)
    assert result.status in ("SAT", "UNSAT", "UNKNOWN")


@pytest.mark.parametrize("name,factory", INSTANCES, ids=[n for n, _ in INSTANCES])
def test_cdcl(benchmark, name, factory):
    formula = factory()

    def run():
        return Solver(formula, SolverConfig()).solve()

    benchmark.group = f"dp-vs-cdcl:{name}"
    benchmark(run)


def test_dp_space_blowup_vs_cdcl():
    """The paper's space argument, as numbers: DP's peak working set grows
    far beyond its input, while CDCL's learned-clause count stays modest
    relative to DP's resolvent count."""
    formula = pigeonhole(6, 5)
    dp = davis_putnam(formula)
    assert dp.status == "UNSAT"
    cdcl = Solver(formula, SolverConfig()).solve()
    assert cdcl.is_unsat
    assert dp.peak_clauses > 2 * formula.num_clauses
    assert dp.total_resolvents > cdcl.stats.learned_clauses
