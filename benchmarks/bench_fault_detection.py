"""§1/§3 motivation: the checker catches buggy solvers.

Benchmarks how quickly the depth-first checker rejects corrupted traces —
rejection is typically *faster* than verification because the failure is
hit before the whole proof is replayed.
"""

from __future__ import annotations

import pytest

from repro.checker import DepthFirstChecker
from repro.generators import pigeonhole
from repro.solver.buggy import BugKind, make_buggy_solver
from repro.trace import InMemoryTraceWriter

BUGS = [
    BugKind.DROP_SOURCE,
    BugKind.SWAP_SOURCES,
    BugKind.WRONG_ANTECEDENT,
    BugKind.OMIT_LEVEL_ZERO,
    BugKind.WRONG_FINAL_CONFLICT,
]


def _corrupted_trace(bug: BugKind):
    formula = pigeonhole(6, 5)
    for seed in range(32):
        writer = InMemoryTraceWriter()
        solver, wrapper = make_buggy_solver(formula, bug, writer, seed=seed)
        result = solver.solve()
        assert result.is_unsat
        if wrapper is None or wrapper.corrupted:
            return formula, writer.to_trace()
    raise AssertionError(f"bug {bug} never fired")


@pytest.mark.parametrize("bug", BUGS, ids=lambda b: b.value)
def test_detect_corrupted_trace(benchmark, bug):
    formula, trace = _corrupted_trace(bug)

    def run():
        report = DepthFirstChecker(formula, trace).check()
        assert not report.verified
        return report

    benchmark.group = "fault-detection"
    report = benchmark(run)
    assert report.failure is not None
