"""Static lint vs. full resolution checking.

The analyzer's pitch is fast-fail triage: a single streaming pass over the
antecedent graph with no clause construction and no resolution. These
benchmarks time ``analyze_trace`` against the depth-first and breadth-first
checkers on the pigeonhole / random-ksat suite and drop a machine-readable
summary in ``results/BENCH_lint.json`` alongside the experiment exports.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import bench_suite
from repro.analysis import analyze_trace
from repro.checker import BreadthFirstChecker, DepthFirstChecker

NAMES = [instance.name for instance in bench_suite()]
SUMMARY_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_lint.json"


@pytest.mark.parametrize("name", NAMES)
def test_lint_streaming(benchmark, prepared_instances, name):
    """The analyzer, streaming the binary trace file end to end."""
    prepared = prepared_instances[name]

    def run():
        report = analyze_trace(prepared.binary_path)
        assert report.ok
        return report

    benchmark.group = f"lint-vs-check:{name}"
    benchmark(run)


@pytest.mark.parametrize("name", NAMES)
def test_lint_no_reachability(benchmark, prepared_instances, name):
    """The analyzer with the ID-graph rule off: the pure O(1)-per-record scan."""
    prepared = prepared_instances[name]

    def run():
        report = analyze_trace(prepared.binary_path, compute_reachability=False)
        assert report.ok
        return report

    benchmark.group = f"lint-vs-check:{name}"
    benchmark(run)


@pytest.mark.parametrize("name", NAMES)
def test_check_depth_first(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        report = DepthFirstChecker(prepared.formula, prepared.trace).check()
        assert report.verified
        return report

    benchmark.group = f"lint-vs-check:{name}"
    benchmark(run)


@pytest.mark.parametrize("name", NAMES)
def test_check_breadth_first(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        report = BreadthFirstChecker(prepared.formula, prepared.binary_path).check()
        assert report.verified
        return report

    benchmark.group = f"lint-vs-check:{name}"
    benchmark(run)


def test_write_summary(prepared_instances):
    """Manual timing sweep; writes the BENCH_lint.json summary table."""
    rows = []
    for prepared in prepared_instances.values():
        timings = {}
        lint_report = None
        for label, run in (
            ("lint", lambda: analyze_trace(prepared.binary_path)),
            (
                "lint_no_reach",
                lambda: analyze_trace(prepared.binary_path, compute_reachability=False),
            ),
            ("df", lambda: DepthFirstChecker(prepared.formula, prepared.trace).check()),
            (
                "bf",
                lambda: BreadthFirstChecker(prepared.formula, prepared.binary_path).check(),
            ),
        ):
            start = time.perf_counter()
            outcome = run()
            timings[label] = time.perf_counter() - start
            if label == "lint":
                lint_report = outcome
                assert outcome.ok
            elif label in ("df", "bf"):
                assert outcome.verified
        rows.append(
            {
                "instance": prepared.name,
                "num_learned": lint_report.num_learned,
                "records": lint_report.records_scanned,
                "reachability_pct": lint_report.reachability_pct,
                "seconds": {k: round(v, 6) for k, v in timings.items()},
                "speedup_vs_df": round(timings["df"] / max(timings["lint"], 1e-9), 2),
                "speedup_vs_bf": round(timings["bf"] / max(timings["lint"], 1e-9), 2),
            }
        )
    SUMMARY_PATH.parent.mkdir(exist_ok=True)
    SUMMARY_PATH.write_text(json.dumps({"rows": rows}, indent=2) + "\n")
    assert rows, "no prepared instances"
