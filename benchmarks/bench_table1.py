"""Table 1: solver runtime with trace generation off vs on.

The paper reports 1.7-12 % overhead from trace generation, shrinking on
harder instances. Each suite instance is benchmarked twice — tracing off
and tracing on — so the pytest-benchmark comparison table *is* Table 1.
(Solving is deterministic, so both arms perform the identical search.)
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import bench_suite
from repro.solver import Solver, SolverConfig
from repro.trace import AsciiTraceWriter

SUITE = bench_suite()


@pytest.mark.parametrize("instance", SUITE, ids=lambda i: i.name)
def test_solve_trace_off(benchmark, instance):
    formula = instance.build()

    def run():
        result = Solver(formula, SolverConfig()).solve()
        assert result.is_unsat
        return result

    benchmark.group = f"table1:{instance.name}"
    benchmark(run)


@pytest.mark.parametrize("instance", SUITE, ids=lambda i: i.name)
def test_solve_trace_on(benchmark, instance, tmp_path):
    formula = instance.build()
    counter = iter(range(10**9))

    def run():
        path = tmp_path / f"t{next(counter)}.trace"
        result = Solver(
            formula, SolverConfig(), trace_writer=AsciiTraceWriter(path)
        ).solve()
        assert result.is_unsat
        os.unlink(path)
        return result

    benchmark.group = f"table1:{instance.name}"
    benchmark(run)
