"""Ablation benches for the design choices DESIGN.md calls out.

* Decision heuristic: VSIDS vs static / random / Jeroslow-Wang — what
  Chaff's heuristic buys on structured instances.
* Learned-clause minimization: shorter clauses (and usually fewer
  conflicts) for more recorded resolutions; traces stay checkable.
* Restart policy: geometric vs Luby vs none.
* Clause deletion: aggressive deletion vs keep-everything.
"""

from __future__ import annotations

import pytest

from repro.checker import DepthFirstChecker
from repro.generators import pigeonhole
from repro.circuits import miter_to_cnf, shifter_equivalence_miter
from repro.solver import Solver, SolverConfig
from repro.trace import InMemoryTraceWriter

PHP = pigeonhole(7, 6)
SHIFT = miter_to_cnf(shifter_equivalence_miter(8))

HEURISTICS = ["vsids", "static", "random", "jeroslow-wang"]
RESTARTS = ["geometric", "luby", "none"]


@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_heuristic_php(benchmark, heuristic):
    def run():
        result = Solver(PHP, SolverConfig(decision_heuristic=heuristic)).solve()
        assert result.is_unsat
        return result

    benchmark.group = "ablation:heuristic:php76"
    benchmark(run)


@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_heuristic_shift_miter(benchmark, heuristic):
    def run():
        result = Solver(SHIFT, SolverConfig(decision_heuristic=heuristic)).solve()
        assert result.is_unsat
        return result

    benchmark.group = "ablation:heuristic:shift_eq8"
    benchmark(run)


@pytest.mark.parametrize("minimize", [False, True], ids=["plain", "minimized"])
def test_minimization(benchmark, minimize):
    def run():
        result = Solver(PHP, SolverConfig(minimize_learned=minimize)).solve()
        assert result.is_unsat
        return result

    benchmark.group = "ablation:minimization:php76"
    benchmark(run)


def test_minimized_traces_stay_checkable_and_shorter():
    def learned_stats(minimize):
        writer = InMemoryTraceWriter()
        Solver(PHP, SolverConfig(minimize_learned=minimize), trace_writer=writer).solve()
        trace = writer.to_trace()
        report = DepthFirstChecker(PHP, trace).check()
        assert report.verified
        total_learned_literals = report.resolutions  # proxy: more resolutions
        return trace, report

    plain_trace, _ = learned_stats(False)
    mini_trace, _ = learned_stats(True)
    plain_sources = sum(len(r.sources) for r in plain_trace.learned.values())
    mini_sources = sum(len(r.sources) for r in mini_trace.learned.values())
    # Minimization records at least as many resolutions per clause.
    assert mini_sources / max(len(mini_trace.learned), 1) >= plain_sources / max(
        len(plain_trace.learned), 1
    )


@pytest.mark.parametrize("policy", RESTARTS)
def test_restart_policy(benchmark, policy):
    def run():
        result = Solver(PHP, SolverConfig(restart_policy=policy)).solve()
        assert result.is_unsat
        return result

    benchmark.group = "ablation:restarts:php76"
    benchmark(run)


@pytest.mark.parametrize(
    "label,kwargs",
    [
        ("keep-all", {"min_learned_cap": 10**9}),
        ("default", {}),
        ("aggressive", {"min_learned_cap": 20, "max_learned_factor": 0.0}),
    ],
    ids=["keep-all", "default", "aggressive"],
)
def test_clause_deletion_policy(benchmark, label, kwargs):
    def run():
        result = Solver(PHP, SolverConfig(**kwargs)).solve()
        assert result.is_unsat
        return result

    benchmark.group = "ablation:deletion:php76"
    benchmark(run)
