"""§4 remark: ASCII vs binary trace formats.

"It is quite easy to modify the format to emphasize space efficiency and
get a 2-3x compaction (e.g. use binary encoding instead of ASCII). By
doing so, we also expect the efficiency of the checker to improve as ...
a significant amount of run time for the checker is spent on parsing."

We benchmark parsing both formats and assert the compaction ratio.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_suite
from repro.trace import iter_ascii_records, iter_binary_records

NAMES = [instance.name for instance in bench_suite()]


@pytest.mark.parametrize("name", NAMES)
def test_parse_ascii_trace(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        return sum(1 for _ in iter_ascii_records(prepared.ascii_path))

    benchmark.group = f"formats:{name}"
    records = benchmark(run)
    assert records > 0


@pytest.mark.parametrize("name", NAMES)
def test_parse_binary_trace(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        return sum(1 for _ in iter_binary_records(prepared.binary_path))

    benchmark.group = f"formats:{name}"
    records = benchmark(run)
    assert records > 0


def test_compaction_ratio(prepared_instances):
    """The paper's 2-3x claim, on every instance with a non-trivial trace."""
    for prepared in prepared_instances.values():
        ascii_size = prepared.ascii_path.stat().st_size
        binary_size = prepared.binary_path.stat().st_size
        if ascii_size < 2048:
            continue  # tiny traces are all fixed overhead
        ratio = ascii_size / binary_size
        assert 1.5 <= ratio <= 4.0, f"{prepared.name}: compaction {ratio:.2f}x"
