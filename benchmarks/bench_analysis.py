"""Graph analyzer + core-first pruning: cost and payoff.

Measures, in one run:

* **analyze** — the derivation-graph pass (``build_graph`` + prune plan)
  over the binary trace: records/second, and its cost as a fraction of an
  unpruned breadth-first check (the pass must stay well under the check
  it is meant to shrink);
* **pruned vs unpruned** — the breadth-first checker end-to-end with and
  without the analyzer's ``PrunePlan``, on a dead-lemma-heavy trace.

The fixture is a disjoint union of two UNSAT random 7-SAT instances whose
traces are merged so that only the first proof reaches the final
conflict: the entire second proof is dead weight a solver emitted but the
refutation never uses (the paper's Table 2 reports 19–90 % of learned
clauses are ever needed — this sits mid-range at ~50 %). The analyzer
must find exactly that dead half, and the pruned check must skip it.
Wide clauses (k=7) keep the comparison honest: the unpruned check's cost
is dominated by actual resolution work, not by trace decoding the
analyzer pays identically.

Usage:

    PYTHONPATH=src python benchmarks/bench_analysis.py            # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_analysis.py --quick    # CI smoke

Writes ``results/BENCH_analysis.json``. Exits non-zero if the pruned and
unpruned verdicts disagree, or (full mode only) if the timing gates fail:
pruned BF must beat unpruned BF by >= 1.3x and the analyzer must cost
< 10 % of the unpruned check.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import analyze_trace, compute_prune_plan  # noqa: E402
from repro.checker import BreadthFirstChecker, DepthFirstChecker  # noqa: E402
from repro.cnf import CnfFormula  # noqa: E402
from repro.generators.random_ksat import random_ksat  # noqa: E402
from repro.solver import SolverConfig, solve_formula  # noqa: E402
from repro.trace.io import load_trace, open_trace_writer  # noqa: E402
from repro.trace.records import (  # noqa: E402
    FinalConflict,
    LearnedClause,
    LevelZeroAssignment,
    Trace,
    TraceHeader,
)

SUMMARY_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_analysis.json"

SPEEDUP_GATE = 1.3  # pruned BF must beat unpruned BF by this factor
ANALYZER_FRACTION_GATE = 0.10  # analyzer cost / unpruned BF check cost


def best_of(repeats: int, fn, *args):
    """Run ``fn`` ``repeats`` times; return (best_seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def merged_dead_lemma_instance(num_vars: int) -> tuple[CnfFormula, Trace]:
    """Union of two disjoint UNSAT instances; only proof A is live.

    Formula: a random 7-SAT instance well above the UNSAT threshold,
    twice, the second copy on fresh variables. Trace: both solver proofs
    (different seeds), remapped into the combined ID space — but the
    level-0 trail and final conflict come from proof A alone, so proof
    B's learned clauses (~half the trace) are dead: valid resolutions an
    unpruned checker replays and a pruned one provably never needs.
    """
    formula = random_ksat(num_vars, 130 * num_vars, k=7, seed=9)
    traces = []
    with tempfile.TemporaryDirectory() as tmp:
        for seed in (0, 1):
            path = Path(tmp) / f"proof-{seed}.rtb"
            writer = open_trace_writer(path, fmt="binary")
            result = solve_formula(
                formula, config=SolverConfig(seed=seed), trace_writer=writer
            )
            writer.close()
            assert result.status == "UNSAT"
            traces.append(load_trace(path))
    trace_a, trace_b = traces

    num_vars = formula.num_vars
    num_orig = len(formula.clauses)
    combined_formula = CnfFormula(
        2 * num_vars,
        list(formula.clauses)
        + [[lit + num_vars if lit > 0 else lit - num_vars for lit in clause]
           for clause in formula.clauses],
    )

    # Combined ID space: originals 1..2*num_orig, then A's learned clauses,
    # then B's. Monotonic IDs and sources-precede-clause are preserved.
    def remap_a(cid: int) -> int:
        return cid if cid <= num_orig else cid + num_orig

    len_a = trace_a.num_learned

    def remap_b(cid: int) -> int:
        return cid + num_orig if cid <= num_orig else cid + num_orig + len_a

    merged = Trace(header=TraceHeader(2 * num_vars, 2 * num_orig), status="UNSAT")
    for trace, remap in ((trace_a, remap_a), (trace_b, remap_b)):
        for record in trace.learned.values():
            cid = remap(record.cid)
            merged.learned[cid] = LearnedClause(
                cid, tuple(remap(s) for s in record.sources)
            )
    # Proof A's trail and conflict only: level-0 antecedents are proof
    # roots, so including B's trail would pull its cone back to life.
    merged.level_zero = [
        LevelZeroAssignment(e.var, e.value, remap_a(e.antecedent))
        for e in trace_a.level_zero
    ]
    merged.final_conflicts = [remap_a(trace_a.final_conflicts[0])]
    return combined_formula, merged


def write_binary(trace: Trace, path: Path) -> None:
    writer = open_trace_writer(path, fmt="binary")
    for record in trace.records():
        if isinstance(record, TraceHeader):
            writer.header(record.num_vars, record.num_original_clauses)
        elif isinstance(record, LearnedClause):
            writer.learned_clause(record.cid, record.sources)
        elif isinstance(record, LevelZeroAssignment):
            writer.level_zero(record.var, record.value, record.antecedent)
        elif isinstance(record, FinalConflict):
            writer.final_conflict(record.cid)
        else:
            writer.result(record.status)
    writer.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: small instance, no JSON, no timing gates"
    )
    args = parser.parse_args(argv)

    num_vars = 12 if args.quick else 15
    repeats = 1 if args.quick else 3
    formula, trace = merged_dead_lemma_instance(num_vars)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "merged.rtb"
        write_binary(trace, trace_path)

        analyze_s, report = best_of(repeats, analyze_trace, trace_path, None, True, True)
        assert report.ok, [str(d) for d in report.errors]
        graph = report.graph
        dead = graph["num_learned"] - graph["core_learned"]
        dead_pct = 100.0 * dead / graph["num_learned"]
        print(
            f"[analyze] {report.records_scanned} records in {analyze_s:.3f}s "
            f"({report.records_scanned / max(analyze_s, 1e-9):,.0f} rec/s) | "
            f"dead {dead}/{graph['num_learned']} learned ({dead_pct:.1f}%)"
        )
        assert dead_pct > 30.0, f"fixture is not dead-lemma-heavy: {dead_pct:.1f}%"

        plan_s, plan = best_of(repeats, compute_prune_plan, trace_path)
        assert plan is not None

        unpruned_s, unpruned = best_of(
            repeats, lambda: BreadthFirstChecker(formula, trace_path).check()
        )
        pruned_s, pruned = best_of(
            repeats,
            lambda: BreadthFirstChecker(formula, trace_path, prune_plan=plan).check(),
        )
        assert unpruned.verified and pruned.verified, "verdicts must agree"
        assert pruned.prune is not None and pruned.prune["skipped"] == dead

        # DF builds lazily, so pruning mostly saves it parsing bookkeeping —
        # reported for the record, gated only on BF where the win is real.
        df_unpruned_s, df_unpruned = best_of(
            repeats, lambda: DepthFirstChecker(formula, trace).check()
        )
        df_pruned_s, df_pruned = best_of(
            repeats,
            lambda: DepthFirstChecker(formula, trace, prune_plan=plan).check(),
        )
        assert df_unpruned.verified and df_pruned.verified, "verdicts must agree"

        speedup = unpruned_s / max(pruned_s, 1e-9)
        fraction = plan_s / max(unpruned_s, 1e-9)
        print(
            f"[bf] unpruned {unpruned_s:.3f}s | pruned {pruned_s:.3f}s "
            f"(skipped {pruned.prune['skipped']}) | speedup {speedup:.2f}x"
        )
        print(
            f"[df] unpruned {df_unpruned_s:.3f}s | pruned {df_pruned_s:.3f}s "
            f"| speedup {df_unpruned_s / max(df_pruned_s, 1e-9):.2f}x"
        )
        print(
            f"[gates] pruned speedup {speedup:.2f}x (need >= {SPEEDUP_GATE}x) | "
            f"analyzer/unpruned-check {fraction:.1%} (need < {ANALYZER_FRACTION_GATE:.0%})"
        )

        if not args.quick:
            SUMMARY_PATH.parent.mkdir(exist_ok=True)
            SUMMARY_PATH.write_text(
                json.dumps(
                    {
                        "instance": (
                            f"random 7-SAT {num_vars}v/{130 * num_vars}c "
                            "x2 disjoint, proof B dead"
                        ),
                        "records": report.records_scanned,
                        "num_learned": graph["num_learned"],
                        "core_learned": graph["core_learned"],
                        "dead_pct": round(dead_pct, 1),
                        "seconds": {
                            "analyze_graph": round(analyze_s, 6),
                            "prune_plan": round(plan_s, 6),
                            "bf_unpruned": round(unpruned_s, 6),
                            "bf_pruned": round(pruned_s, 6),
                            "df_unpruned": round(df_unpruned_s, 6),
                            "df_pruned": round(df_pruned_s, 6),
                        },
                        "records_per_second": round(
                            report.records_scanned / max(analyze_s, 1e-9)
                        ),
                        "pruned_speedup": round(speedup, 2),
                        "analyzer_fraction_of_check": round(fraction, 4),
                        "gates": {
                            "speedup_min": SPEEDUP_GATE,
                            "analyzer_fraction_max": ANALYZER_FRACTION_GATE,
                        },
                    },
                    indent=2,
                )
                + "\n"
            )
            print(f"[bench] wrote {SUMMARY_PATH}")
            if speedup < SPEEDUP_GATE or fraction >= ANALYZER_FRACTION_GATE:
                print("[bench] FAILED timing gates", file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
