"""§5 future work: a checker with DF's selectivity and BF-like residency.

Benchmarks the hybrid checker against both baselines and asserts its
defining properties: it builds (at most marginally more than) the DF
subset while its resident clause memory sits between BF's and DF's.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_suite
from repro.checker import BreadthFirstChecker, DepthFirstChecker, HybridChecker

NAMES = [instance.name for instance in bench_suite()]


@pytest.mark.parametrize("name", NAMES)
def test_hybrid_checker(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        report = HybridChecker(prepared.formula, prepared.binary_path).check()
        assert report.verified
        return report

    benchmark.group = f"hybrid:{name}"
    benchmark(run)


def test_hybrid_properties(prepared_instances):
    for prepared in prepared_instances.values():
        df = DepthFirstChecker(prepared.formula, prepared.trace).check()
        bf = BreadthFirstChecker(prepared.formula, prepared.binary_path).check()
        hy = HybridChecker(prepared.formula, prepared.binary_path).check()
        assert df.verified and bf.verified and hy.verified
        # Selectivity: hybrid builds the needed sub-DAG, not everything.
        assert hy.clauses_built <= bf.clauses_built
        assert df.clauses_built <= hy.clauses_built
        # Memory: below DF (it never keeps unneeded literals).
        if df.peak_memory_units > 2000:  # skip trivial traces
            assert hy.peak_memory_units < df.peak_memory_units
