"""Benches for the extension layers built on checked proofs.

* trace trimming (drat-trim-style core proofs),
* Craig interpolation (proof -> circuit),
* assumption queries with verified failed-assumption cores,
* variable-elimination preprocessing on/off.
"""

from __future__ import annotations

import pytest

from repro.checker import DepthFirstChecker
from repro.circuits import miter_to_cnf, shifter_equivalence_miter
from repro.generators import pigeonhole, tseitin_random_regular
from repro.interp import compute_interpolant, verify_interpolant
from repro.solver import Solver, SolverConfig
from repro.solver.assumptions import solve_with_assumptions
from repro.trace import InMemoryTraceWriter
from repro.trace.trim import trim_trace


@pytest.fixture(scope="module")
def shifter_proof():
    formula = miter_to_cnf(shifter_equivalence_miter(8))
    writer = InMemoryTraceWriter()
    result = Solver(formula, SolverConfig(), trace_writer=writer).solve()
    assert result.is_unsat
    return formula, writer.to_trace()


def test_bench_trim(benchmark, shifter_proof):
    formula, trace = shifter_proof

    def run():
        return trim_trace(formula, trace)

    benchmark.group = "extensions:trim"
    result = benchmark(run)
    assert result.dropped_learned > 0


def test_bench_check_trimmed_vs_full(benchmark, shifter_proof):
    formula, trace = shifter_proof
    trimmed = trim_trace(formula, trace).trace

    def run():
        report = DepthFirstChecker(formula, trimmed).check()
        assert report.verified
        return report

    benchmark.group = "extensions:trim"
    benchmark(run)


def test_bench_interpolation(benchmark, shifter_proof):
    formula, trace = shifter_proof
    a_ids = set(range(1, formula.num_clauses // 2 + 1))

    def run():
        return compute_interpolant(formula, trace, a_ids)

    benchmark.group = "extensions:interpolation"
    interpolant = benchmark(run)
    assert verify_interpolant(formula, a_ids, interpolant)


def test_bench_assumption_query(benchmark):
    formula = pigeonhole(4, 4)  # SAT base; assumptions make it UNSAT

    def run():
        result = solve_with_assumptions(formula, [1, 5])  # two pigeons, hole 0
        assert result.is_unsat
        return result

    benchmark.group = "extensions:assumptions"
    result = benchmark(run)
    assert set(result.failed_assumptions) == {1, 5}


@pytest.mark.parametrize("elimination", [False, True], ids=["plain", "with-VE"])
def test_bench_variable_elimination(benchmark, elimination):
    formula = tseitin_random_regular(12, degree=3, seed=6)

    def run():
        config = SolverConfig(preprocess_elimination=elimination)
        result = Solver(formula, config).solve()
        assert result.is_unsat
        return result

    benchmark.group = "extensions:elimination"
    benchmark(run)
