"""Table 3: iterated unsat-core extraction.

The paper iterates solve -> check -> extract up to 30 times (or until a
fixed point where every clause is needed). We benchmark the first
extraction and the full iteration per Table 3 instance, asserting the
paper's qualitative facts: planning/routing cores shrink a lot, the
pigeonhole core does not shrink at all.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_core_suite
from repro.core_extract import extract_core, iterate_core

SUITE = bench_core_suite()
_BY_NAME = {instance.name: instance for instance in SUITE}


@pytest.mark.parametrize("instance", SUITE, ids=lambda i: i.name)
def test_first_core_extraction(benchmark, instance):
    formula = instance.build()

    def run():
        return extract_core(formula)

    benchmark.group = f"table3:{instance.name}"
    core = benchmark(run)
    assert 0 < core.num_clauses <= formula.num_clauses


@pytest.mark.parametrize("instance", SUITE, ids=lambda i: i.name)
def test_iterate_to_fixed_point(benchmark, instance):
    formula = instance.build()

    def run():
        return iterate_core(formula, max_iterations=30)

    benchmark.group = f"table3:{instance.name}"
    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    final_clauses, _ = outcome.final
    assert final_clauses <= formula.num_clauses


def test_core_shapes_match_paper():
    """Qualitative Table 3 shape, independent of timing."""
    routing = iterate_core(_BY_NAME["fpga_route_core"].build(), max_iterations=10)
    planning = iterate_core(_BY_NAME["bw_swap_core"].build(), max_iterations=10)
    php = iterate_core(_BY_NAME["pipe_php_core"].build(), max_iterations=10)

    # Routing and planning instances have small cores (paper §4).
    assert routing.final[0] < 0.8 * routing.iterations[0][0]
    assert planning.final[0] < 0.8 * planning.iterations[0][0]
    # Pigeonhole needs every clause: fixed point immediately, no shrink.
    assert php.final[0] == php.iterations[0][0]
    assert php.reached_fixed_point
