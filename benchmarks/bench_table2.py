"""Table 2: depth-first vs breadth-first (vs hybrid) checking.

The paper finds DF ~2x faster than BF but with a much larger memory
footprint (two memory-outs at 800 MB). Each instance is solved once in a
session fixture; the benchmark times only the checking, and each test
asserts the paper's memory ordering (BF peak <= DF peak) on the side.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_suite
from repro.checker import BreadthFirstChecker, DepthFirstChecker, HybridChecker

NAMES = [instance.name for instance in bench_suite()]


@pytest.mark.parametrize("name", NAMES)
def test_check_depth_first(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        report = DepthFirstChecker(prepared.formula, prepared.trace).check()
        assert report.verified, report.summary()
        return report

    benchmark.group = f"table2:{name}"
    report = benchmark(run)
    assert report.clauses_built <= prepared.trace.num_learned


@pytest.mark.parametrize("name", NAMES)
def test_check_breadth_first(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        report = BreadthFirstChecker(prepared.formula, prepared.binary_path).check()
        assert report.verified, report.summary()
        return report

    benchmark.group = f"table2:{name}"
    bf_report = benchmark(run)
    df_report = DepthFirstChecker(prepared.formula, prepared.trace).check()
    # The paper's memory punchline: BF stays far below DF.
    assert bf_report.peak_memory_units <= df_report.peak_memory_units
    assert bf_report.clauses_built == prepared.trace.num_learned


@pytest.mark.parametrize("name", NAMES)
def test_check_hybrid(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        report = HybridChecker(prepared.formula, prepared.binary_path).check()
        assert report.verified, report.summary()
        return report

    benchmark.group = f"table2:{name}"
    benchmark(run)
