"""BDDs vs SAT on the same problems — the technology contrast that framed
the paper's era ("Symbolic Model Checking without BDDs").

CEC: canonical BDDs decide equivalence by construction; SAT decides it by
search + checked proof. Reachability: exact BDD fixed points vs validated
BMC at the exact counterexample depth.
"""

from __future__ import annotations

import pytest

from repro.apps import BoundedModelChecker, EquivalenceChecker
from repro.bdd import bdd_equivalent, symbolic_reachability
from repro.bmc import counter_system, token_ring_system
from repro.circuits import (
    carry_select_adder,
    random_circuit,
    rewritten_copy,
    ripple_carry_adder,
)

CEC_PAIRS = {
    "adders8": lambda: (ripple_carry_adder(8), carry_select_adder(8, block=3)),
    "random_rewrite": lambda: (
        random_circuit(10, 60, 4, seed=2),
        rewritten_copy(random_circuit(10, 60, 4, seed=2), seed=3),
    ),
}


@pytest.mark.parametrize("name", sorted(CEC_PAIRS))
def test_cec_via_bdd(benchmark, name):
    left, right = CEC_PAIRS[name]()

    def run():
        assert bdd_equivalent(left, right)

    benchmark.group = f"bdd-vs-sat:cec:{name}"
    benchmark(run)


@pytest.mark.parametrize("name", sorted(CEC_PAIRS))
def test_cec_via_sat(benchmark, name):
    left, right = CEC_PAIRS[name]()

    def run():
        outcome = EquivalenceChecker(left, right).run()
        assert outcome.equivalent is True

    benchmark.group = f"bdd-vs-sat:cec:{name}"
    benchmark(run)


SYSTEMS = {
    "counter": lambda: counter_system(5, bad_value=12),
    "token_ring": lambda: token_ring_system(5),
}


@pytest.mark.parametrize("name", sorted(SYSTEMS))
def test_reachability_via_bdd(benchmark, name):
    system = SYSTEMS[name]()

    def run():
        return symbolic_reachability(system, stop_at_bad=True)

    benchmark.group = f"bdd-vs-sat:reach:{name}"
    benchmark(run)


@pytest.mark.parametrize("name", sorted(SYSTEMS))
def test_reachability_via_bmc(benchmark, name):
    system = SYSTEMS[name]()

    def run():
        return BoundedModelChecker(system).run(max_bound=12)

    benchmark.group = f"bdd-vs-sat:reach:{name}"
    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = symbolic_reachability(system)
    assert outcome.property_violated == exact.bad_reachable
