"""Constant-memory gate for the shifting-window streaming checker.

The streaming tier's contract is *flat residency*: peak resident
clause-store size is a function of the ``--memory-window`` budget, not of
the trace. This benchmark generates chain+hub traces (``tools/gen_trace``)
at 1x / 3x / 10x sizes — the 10x fixture is more than ten times larger
than any trace previously benchmarked in ``results/`` — and gates:

* **flatness** — streaming ``peak_resident_units`` stays within
  ``FLAT_RATIO`` of the smallest size and never exceeds the budget by
  more than ``BUDGET_SLACK`` units, while the breadth-first baseline's
  residency grows with the trace;
* **throughput** — streaming wall time on the medium fixture stays
  within ``TIME_RATIO`` of breadth-first;
* **ladder** — a supervised run with a starving ``memory_limit`` and
  ``streaming_threshold_bytes=0`` memory-outs the in-memory rungs and
  lands on the streaming tier, which verifies.

Usage:

    PYTHONPATH=src python benchmarks/bench_streaming.py          # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_streaming.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro.checker import BreadthFirstChecker, StreamingWindowChecker  # noqa: E402
from repro.checker.supervisor import CheckSupervisor, SupervisorConfig  # noqa: E402
from repro.cnf import parse_dimacs_file  # noqa: E402
from tools.gen_trace import generate  # noqa: E402

#: Streaming resident-unit budget used for every sized run.
BUDGET_UNITS = 4096
#: Absolute overshoot the enforcement loop may leave (one in-flight build
#: plus the original kept alive for the caller).
BUDGET_SLACK = 64
#: Max allowed max/min spread of streaming peak residency across sizes.
FLAT_RATIO = 1.25
#: Streaming wall time on the medium fixture vs breadth-first. Quick mode
#: uses a looser gate: on tiny fixtures the constant costs (mmap setup,
#: counting pass) dominate and the ratio is all noise — quick verifies
#: wiring, the full run verifies performance.
TIME_RATIO = 1.5
QUICK_TIME_RATIO = 2.5
#: The 10x fixture must be at least this many times larger than the
#: largest trace previously benchmarked into results/ (php(9,8)).
PRIOR_MAX_TRACE_BYTES = 387_973


def run_streaming(cnf: str, trace: str) -> tuple[float, dict]:
    formula = parse_dimacs_file(cnf)
    start = time.perf_counter()
    report = StreamingWindowChecker(formula, trace, memory_budget=BUDGET_UNITS).check()
    elapsed = time.perf_counter() - start
    if not report.verified:
        raise SystemExit(f"streaming failed on {trace}: {report.failure}")
    return elapsed, dict(report.memory or {})


def run_bf(cnf: str, trace: str) -> tuple[float, dict]:
    formula = parse_dimacs_file(cnf)
    start = time.perf_counter()
    report = BreadthFirstChecker(formula, trace).check()
    elapsed = time.perf_counter() - start
    if not report.verified:
        raise SystemExit(f"breadth-first failed on {trace}: {report.failure}")
    return elapsed, dict(report.memory or {})


def run_ladder(cnf: str, trace: str) -> dict:
    """Supervised check forced through the degradation ladder to streaming."""
    formula = parse_dimacs_file(cnf)
    config = SupervisorConfig(
        method="df",
        policy="fallback",
        memory_limit=BUDGET_UNITS,
        streaming_threshold_bytes=0,
    )
    report = CheckSupervisor(formula, trace, config=config).check()
    attempts = [
        {"method": a["method"], "outcome": a["outcome"]}
        for a in (report.degradation or ())
    ]
    if not report.verified:
        raise SystemExit(f"supervised ladder run failed: {report.failure}")
    if report.method != "streaming":
        raise SystemExit(
            f"ladder was expected to land on streaming, got {report.method!r} "
            f"(attempts: {attempts})"
        )
    if not any(a["outcome"] == "memory-out" for a in attempts[:-1]):
        raise SystemExit(
            f"no in-memory rung memory-outed before streaming: {attempts}"
        )
    return {
        "verified": report.verified,
        "final_method": report.method,
        "attempts": attempts,
        "peak_resident_units": (report.memory or {}).get("peak_resident_units"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: small sizes, no JSON")
    parser.add_argument("--out", default="results/BENCH_streaming.json")
    args = parser.parse_args(argv)

    # 1x / 3x / 10x chain lengths. The full 10x fixture decodes to ~6 MB
    # of binary trace with ~385k learned records.
    chains = [4000, 12000, 40000] if args.quick else [35000, 105000, 350000]

    rows = []
    failures = []
    with tempfile.TemporaryDirectory(prefix="bench-streaming-") as tmp_dir:
        fixtures = []
        for chain in chains:
            stats = generate(os.path.join(tmp_dir, f"chain_{chain}"), chain)
            fixtures.append(stats)
        if not args.quick:
            largest = fixtures[-1]["trace_bytes"]
            if largest < 10 * PRIOR_MAX_TRACE_BYTES:
                failures.append(
                    f"10x fixture is only {largest} bytes; needs >= "
                    f"{10 * PRIOR_MAX_TRACE_BYTES} to dwarf prior results/"
                )

        for scale, stats in zip(("1x", "3x", "10x"), fixtures):
            elapsed, memory = run_streaming(stats["cnf"], stats["trace"])
            row = {
                "scale": scale,
                "chain": stats["chain"],
                "num_learned": stats["num_learned"],
                "trace_bytes": stats["trace_bytes"],
                "streaming_s": round(elapsed, 4),
                "peak_resident_units": memory.get("peak_resident_units"),
                "peak_unique_clauses": memory.get("peak_unique_clauses"),
                "spilled_clauses": memory.get("spilled_clauses"),
                "reloaded_clauses": memory.get("reloaded_clauses"),
            }
            rows.append(row)
            print(
                f"== {scale}: {row['num_learned']} learned, "
                f"{row['trace_bytes']} bytes -> streaming {elapsed:.2f}s, "
                f"peak {row['peak_resident_units']} units "
                f"({row['peak_unique_clauses']} clauses), "
                f"{row['spilled_clauses']} spills"
            )

        # Flatness gates.
        peaks = [row["peak_resident_units"] for row in rows]
        if max(peaks) > BUDGET_UNITS + BUDGET_SLACK:
            failures.append(
                f"peak residency {max(peaks)} exceeds budget "
                f"{BUDGET_UNITS} + slack {BUDGET_SLACK}"
            )
        if max(peaks) > FLAT_RATIO * min(peaks):
            failures.append(
                f"peak residency not flat across sizes: {peaks} "
                f"(ratio > {FLAT_RATIO})"
            )

        # Throughput gate on the medium fixture, plus the BF residency
        # contrast (grows with the trace; streaming must not).
        medium = fixtures[1]
        bf_s, bf_memory = run_bf(medium["cnf"], medium["trace"])
        bf_peak = bf_memory.get("peak_unique_clauses")
        streaming_s = rows[1]["streaming_s"]
        ratio = streaming_s / bf_s if bf_s > 0 else float("inf")
        time_gate = QUICK_TIME_RATIO if args.quick else TIME_RATIO
        print(
            f"== medium: bf {bf_s:.2f}s ({bf_peak} resident clauses) vs "
            f"streaming {streaming_s:.2f}s "
            f"({rows[1]['peak_unique_clauses']} resident clauses), "
            f"ratio {ratio:.2f}"
        )
        if ratio > time_gate:
            failures.append(
                f"streaming {streaming_s:.2f}s is {ratio:.2f}x bf {bf_s:.2f}s "
                f"(gate {time_gate}x)"
            )
        if bf_peak is not None and bf_peak <= rows[1]["peak_unique_clauses"]:
            failures.append(
                "breadth-first residency should dwarf streaming's on the "
                f"hub family; got bf={bf_peak} vs streaming="
                f"{rows[1]['peak_unique_clauses']}"
            )

        # Ladder gate: the supervisor reaches the streaming tier under a
        # forced memory budget and verifies there.
        small = fixtures[0]
        ladder = run_ladder(small["cnf"], small["trace"])
        print(
            f"== ladder: {' -> '.join(a['method'] for a in ladder['attempts'])} "
            f"(final verified via {ladder['final_method']})"
        )

    if not args.quick:
        payload = {
            "benchmark": "streaming shifting-window checker",
            "budget_units": BUDGET_UNITS,
            "gates": {
                "flat_ratio": FLAT_RATIO,
                "budget_slack_units": BUDGET_SLACK,
                "time_ratio_vs_bf": TIME_RATIO,
            },
            "rows": rows,
            "medium_bf": {
                "bf_s": round(bf_s, 4),
                "peak_unique_clauses": bf_peak,
                "streaming_over_bf": round(ratio, 3),
            },
            "ladder": ladder,
            "failures": failures,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all streaming gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
