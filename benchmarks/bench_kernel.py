"""Before/after benchmark for the resolution kernel overhaul.

Measures, in one run:

* **decode** — the binary trace hot loop, legacy byte-at-a-time decoder
  vs the batched chunk decoder;
* **resolve** — chain resolution over the in-memory trace, frozenset
  reference engine vs the marking-array kernel (with an oracle gate: the
  kernel's resolvent must equal the reference's on every chain);
* **end-to-end** — each checker mode (bf / df / hybrid / parallel) run
  old-style (reference engine + legacy decoder) and new-style (kernel +
  batched decoder) against the same traces, plus a per-phase breakdown
  for the breadth-first checker (decode vs resolve vs bookkeeping).

Usage:

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick    # CI smoke

Exits non-zero if the kernel ever disagrees with the frozenset oracle, or
if any checker run fails to verify.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.checker import (  # noqa: E402
    BreadthFirstChecker,
    DepthFirstChecker,
    HybridChecker,
    ParallelWindowedChecker,
)
from repro.checker.kernel import KernelEngine, ReferenceEngine  # noqa: E402
from repro.cnf import CnfFormula  # noqa: E402
from repro.generators.pigeonhole import pigeonhole  # noqa: E402
from repro.solver import solve_formula  # noqa: E402
from repro.trace import binary_format  # noqa: E402
from repro.trace.io import load_trace, open_trace_writer  # noqa: E402
from repro.trace.records import LearnedClause, Trace  # noqa: E402


def best_of(repeats: int, fn, *args):
    """Run ``fn`` ``repeats`` times; return (best_seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def best_of_pair(repeats: int, fn_a, fn_b):
    """Interleaved best-of timing for an A/B pair.

    Alternating the two sides within each repeat keeps machine noise from
    landing on one side only and skewing the reported ratio.
    """
    a_s = b_s = float("inf")
    a_r = b_r = None
    for _ in range(repeats):
        start = time.perf_counter()
        a_r = fn_a()
        a_s = min(a_s, time.perf_counter() - start)
        start = time.perf_counter()
        b_r = fn_b()
        b_s = min(b_s, time.perf_counter() - start)
    return a_s, a_r, b_s, b_r


def prepare(pigeons: int, holes: int, tmp_dir: str) -> tuple[CnfFormula, str, Trace]:
    formula = pigeonhole(pigeons, holes)
    path = os.path.join(tmp_dir, f"php_{pigeons}_{holes}.rtb")
    writer = open_trace_writer(path, fmt="binary")
    result = solve_formula(formula, trace_writer=writer)
    writer.close()
    if result.status != "UNSAT":
        raise SystemExit(f"php({pigeons},{holes}) did not come back UNSAT")
    return formula, path, load_trace(path)


# -- phase: decode -----------------------------------------------------------


def bench_decode(path: str, repeats: int) -> dict:
    def drain_legacy():
        return sum(1 for _ in binary_format.iter_binary_records_unbatched(path))

    def drain_batched():
        return sum(1 for _ in binary_format.iter_binary_records(path))

    legacy_s, n_legacy, batched_s, n_batched = best_of_pair(
        repeats, drain_legacy, drain_batched
    )
    if n_legacy != n_batched:
        raise SystemExit(
            f"decoder disagreement: legacy saw {n_legacy} records, "
            f"batched saw {n_batched}"
        )
    return {
        "records": n_legacy,
        "legacy_s": round(legacy_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": round(legacy_s / batched_s, 2) if batched_s else None,
    }


# -- phase: resolve ----------------------------------------------------------


def _replay_chains(engine, trace: Trace) -> list:
    """Re-derive every learned clause, keeping everything resident."""
    built = {}

    def get_clause(cid):
        clause = built.get(cid)
        if clause is None:
            clause = engine.original(cid)
            built[cid] = clause
        return clause

    out = []
    for record in trace.learned.values():
        clause = engine.chain(record.cid, record.sources, get_clause)
        built[record.cid] = clause
        out.append(clause)
    return out


def bench_resolve(formula: CnfFormula, trace: Trace, repeats: int) -> dict:
    reference_s, ref_clauses, kernel_s, kernel_clauses = best_of_pair(
        repeats,
        lambda: _replay_chains(ReferenceEngine(formula), trace),
        lambda: _replay_chains(KernelEngine(formula), trace),
    )
    # Oracle gate: the kernel must agree with the frozenset reference on
    # every derived clause.
    mismatches = 0
    for ref, ker in zip(ref_clauses, kernel_clauses):
        if frozenset(ker) != ref:
            mismatches += 1
    if mismatches:
        raise SystemExit(
            f"ORACLE DISAGREEMENT: kernel differs from frozenset reference "
            f"on {mismatches}/{len(ref_clauses)} chains"
        )
    return {
        "chains": len(ref_clauses),
        "reference_s": round(reference_s, 6),
        "kernel_s": round(kernel_s, 6),
        "speedup": round(reference_s / kernel_s, 2) if kernel_s else None,
    }


# -- phase: end-to-end -------------------------------------------------------


def _make_checker(mode: str, formula: CnfFormula, path: str, use_kernel: bool):
    if mode == "bf":
        return BreadthFirstChecker(formula, path, use_kernel=use_kernel)
    if mode == "df":
        return DepthFirstChecker(formula, load_trace(path), use_kernel=use_kernel)
    if mode == "hybrid":
        return HybridChecker(formula, path, use_kernel=use_kernel)
    if mode == "parallel":
        return ParallelWindowedChecker(
            formula, path, num_workers=2, use_kernel=use_kernel
        )
    raise ValueError(mode)


def bench_end_to_end(formula: CnfFormula, path: str, repeats: int, modes) -> dict:
    results = {}
    for mode in modes:
        def run_old():
            with binary_format.decoder_mode("legacy"):
                report = _make_checker(mode, formula, path, use_kernel=False).check()
            return report

        def run_new():
            report = _make_checker(mode, formula, path, use_kernel=True).check()
            return report

        # Interleave the old/new timings so a noisy stretch of machine
        # time degrades both sides alike instead of skewing the ratio.
        old_s = new_s = float("inf")
        old_report = new_report = None
        for _ in range(repeats):
            start = time.perf_counter()
            old_report = run_old()
            old_s = min(old_s, time.perf_counter() - start)
            start = time.perf_counter()
            new_report = run_new()
            new_s = min(new_s, time.perf_counter() - start)
        for label, report in (("old", old_report), ("new", new_report)):
            if not report.verified:
                raise SystemExit(f"{mode}/{label} failed to verify: {report.failure}")
        if old_report.clauses_built != new_report.clauses_built:
            raise SystemExit(
                f"{mode}: old built {old_report.clauses_built} clauses, "
                f"new built {new_report.clauses_built}"
            )
        results[mode] = {
            "old_s": round(old_s, 6),
            "new_s": round(new_s, 6),
            "speedup": round(old_s / new_s, 2) if new_s else None,
            "clauses_built": new_report.clauses_built,
            "peak_units": new_report.peak_memory_units,
        }
    return results


def bf_breakdown(end_to_end: dict, decode: dict, resolve: dict) -> dict:
    """Split the BF checker's new-path time into decode / resolve /
    bookkeeping. BF streams the trace three times (extent, counting,
    checking), so decode is charged 3x."""
    total = end_to_end["bf"]["new_s"]
    decode_s = 3 * decode["batched_s"]
    resolve_s = resolve["kernel_s"]
    return {
        "total_s": round(total, 6),
        "decode_s": round(decode_s, 6),
        "resolve_s": round(resolve_s, 6),
        "bookkeeping_s": round(max(0.0, total - decode_s - resolve_s), 6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: small instance, no JSON")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats (best-of)")
    parser.add_argument("--out", default="results/BENCH_kernel.json")
    args = parser.parse_args(argv)

    if args.quick:
        instances = [(6, 5)]
        repeats = args.repeats or 1
        modes = ["bf", "df"]
    else:
        instances = [(8, 7), (9, 8)]
        # Best-of-9 keeps the old/new ratio stable to within a few percent
        # on a noisy machine; interleaving (best_of_pair) does the rest.
        repeats = args.repeats or 9
        modes = ["bf", "df", "hybrid", "parallel"]

    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-kernel-") as tmp_dir:
        for pigeons, holes in instances:
            formula, path, trace = prepare(pigeons, holes, tmp_dir)
            decode = bench_decode(path, repeats)
            resolve = bench_resolve(formula, trace, repeats)
            end_to_end = bench_end_to_end(formula, path, repeats, modes)
            row = {
                "instance": f"php({pigeons},{holes})",
                "num_vars": formula.num_vars,
                "num_clauses": formula.num_clauses,
                "num_learned": trace.num_learned,
                "trace_bytes": os.path.getsize(path),
                "decode": decode,
                "resolve": resolve,
                "end_to_end": end_to_end,
                "bf_breakdown": bf_breakdown(end_to_end, decode, resolve),
            }
            rows.append(row)
            print(f"== {row['instance']}: {trace.num_learned} learned, "
                  f"{row['trace_bytes']} bytes")
            print(f"   decode  legacy {decode['legacy_s']:.4f}s  "
                  f"batched {decode['batched_s']:.4f}s  ({decode['speedup']}x)")
            print(f"   resolve reference {resolve['reference_s']:.4f}s  "
                  f"kernel {resolve['kernel_s']:.4f}s  ({resolve['speedup']}x)")
            for mode, stats in end_to_end.items():
                print(f"   e2e {mode:8s} old {stats['old_s']:.4f}s  "
                      f"new {stats['new_s']:.4f}s  ({stats['speedup']}x)")

    print("oracle gate: kernel == frozenset reference on every chain")
    if not args.quick:
        worst_bf = min(row["end_to_end"]["bf"]["speedup"] for row in rows)
        payload = {
            "benchmark": "resolution kernel overhaul",
            "quick": False,
            "repeats": repeats,
            "worst_bf_speedup": worst_bf,
            "rows": rows,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out} (worst BF end-to-end speedup: {worst_bf}x)")
        if worst_bf < 2.0:
            print("WARNING: BF speedup below the 2x target", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
