"""Fault-free overhead benchmark for the checking supervisor.

The resilience layer (deadline polling in every streaming loop, the
supervisor wrapper, per-attempt accounting) must be close to free when
nothing goes wrong. This benchmark times, interleaved best-of:

* **bare** — ``BreadthFirstChecker`` exactly as before this layer existed:
  no deadline, no checkpointing, called directly;
* **supervised** — the same check routed through ``CheckSupervisor`` with a
  generous wall-clock budget (so the deadline polling is armed and paying
  its cost on every tick, but never fires).

The gate: supervised overhead must stay **below 5%** of the bare time on
the largest instance. Exits non-zero when the gate fails.

Usage:

    PYTHONPATH=src python benchmarks/bench_supervisor.py          # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_supervisor.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.checker import BreadthFirstChecker, CheckSupervisor  # noqa: E402
from repro.cnf import CnfFormula  # noqa: E402
from repro.generators.pigeonhole import pigeonhole  # noqa: E402
from repro.solver import solve_formula  # noqa: E402
from repro.trace.io import open_trace_writer  # noqa: E402

#: Fault-free supervisor overhead ceiling, as a fraction of the bare time.
OVERHEAD_GATE = 0.05


def prepare(pigeons: int, holes: int, tmp_dir: str) -> tuple[CnfFormula, str, int]:
    formula = pigeonhole(pigeons, holes)
    path = os.path.join(tmp_dir, f"php_{pigeons}_{holes}.rtb")
    writer = open_trace_writer(path, fmt="binary")
    result = solve_formula(formula, trace_writer=writer)
    writer.close()
    if result.status != "UNSAT":
        raise SystemExit(f"php({pigeons},{holes}) did not come back UNSAT")
    return formula, path, os.path.getsize(path)


def bench_pair(formula: CnfFormula, path: str, repeats: int) -> dict:
    def run_bare():
        return BreadthFirstChecker(formula, path).check()

    def run_supervised():
        # timeout armed (polling active on every tick) but far from firing.
        return CheckSupervisor(
            formula, path, method="bf", policy="fallback", timeout=3600.0
        ).check()

    # Interleave so machine noise lands on both sides alike.
    bare_s = supervised_s = float("inf")
    bare_report = supervised_report = None
    for _ in range(repeats):
        start = time.perf_counter()
        bare_report = run_bare()
        bare_s = min(bare_s, time.perf_counter() - start)
        start = time.perf_counter()
        supervised_report = run_supervised()
        supervised_s = min(supervised_s, time.perf_counter() - start)

    for label, report in (("bare", bare_report), ("supervised", supervised_report)):
        if not report.verified:
            raise SystemExit(f"{label} run failed to verify: {report.failure}")
    if bare_report.clauses_built != supervised_report.clauses_built:
        raise SystemExit(
            f"bare built {bare_report.clauses_built} clauses, supervised "
            f"built {supervised_report.clauses_built}"
        )
    if len(supervised_report.degradation or ()) != 1:
        raise SystemExit("fault-free supervised run should be a one-rung ladder")
    return {
        "bare_s": round(bare_s, 6),
        "supervised_s": round(supervised_s, 6),
        "overhead_pct": round(100.0 * (supervised_s - bare_s) / bare_s, 2),
        "clauses_built": bare_report.clauses_built,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: small instance, no JSON")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats (best-of)")
    parser.add_argument("--out", default="results/BENCH_supervisor.json")
    args = parser.parse_args(argv)

    if args.quick:
        instances = [(6, 5)]
        repeats = args.repeats or 2
    else:
        instances = [(8, 7), (9, 8)]
        # Best-of keeps the ratio stable; the absolute times are small
        # enough that noise dominates single runs.
        repeats = args.repeats or 9

    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-supervisor-") as tmp_dir:
        for pigeons, holes in instances:
            formula, path, trace_bytes = prepare(pigeons, holes, tmp_dir)
            pair = bench_pair(formula, path, repeats)
            row = {
                "instance": f"php({pigeons},{holes})",
                "num_vars": formula.num_vars,
                "num_clauses": formula.num_clauses,
                "trace_bytes": trace_bytes,
                **pair,
            }
            rows.append(row)
            print(
                f"== {row['instance']}: bare {pair['bare_s']:.4f}s  "
                f"supervised {pair['supervised_s']:.4f}s  "
                f"overhead {pair['overhead_pct']:+.2f}%"
            )

    # Gate on the largest instance: small ones are all noise, and the
    # per-tick polling cost only shows at scale anyway.
    gated = rows[-1]["overhead_pct"]
    if not args.quick:
        payload = {
            "benchmark": "supervisor fault-free overhead",
            "quick": False,
            "repeats": repeats,
            "gate_pct": 100.0 * OVERHEAD_GATE,
            "gated_overhead_pct": gated,
            "rows": rows,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out} (gated overhead: {gated:+.2f}%)")
    if gated > 100.0 * OVERHEAD_GATE:
        print(
            f"FAIL: supervisor overhead {gated:+.2f}% exceeds the "
            f"{100.0 * OVERHEAD_GATE:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    print(f"gate passed: overhead {gated:+.2f}% < {100.0 * OVERHEAD_GATE:.0f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
