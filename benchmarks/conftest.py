"""Shared fixtures for the benchmark harness.

The benchmarks regenerate the paper's tables as timing comparisons. They
run at the ``small`` suite scale by default so the whole harness completes
in a couple of minutes of pure Python; set ``REPRO_BENCH_SCALE=medium`` (or
``large``) for the EXPERIMENTS.md-grade runs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.suite import BenchmarkInstance, core_suite, default_suite
from repro.solver import Solver, SolverConfig
from repro.trace import AsciiTraceWriter, BinaryTraceWriter, load_trace

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def bench_suite() -> list[BenchmarkInstance]:
    return default_suite(BENCH_SCALE)


def bench_core_suite() -> list[BenchmarkInstance]:
    return core_suite(BENCH_SCALE)


class PreparedInstance:
    """An instance solved once up front: formula + trace files + trace."""

    def __init__(self, instance: BenchmarkInstance, directory):
        self.name = instance.name
        self.formula = instance.build()
        self.ascii_path = directory / f"{instance.name}.trace"
        self.binary_path = directory / f"{instance.name}.rtb"
        result = Solver(
            self.formula, SolverConfig(), trace_writer=AsciiTraceWriter(self.ascii_path)
        ).solve()
        assert result.is_unsat, f"{instance.name} must be UNSAT"
        Solver(
            self.formula, SolverConfig(), trace_writer=BinaryTraceWriter(self.binary_path)
        ).solve()
        self.trace = load_trace(self.binary_path)
        self.solve_time = result.stats.solve_time


@pytest.fixture(scope="session")
def prepared_instances(tmp_path_factory) -> dict[str, PreparedInstance]:
    directory = tmp_path_factory.mktemp("bench-traces")
    return {
        instance.name: PreparedInstance(instance, directory)
        for instance in bench_suite()
    }
