"""Forward-vs-backward gate for the DRAT checker.

Backward (core-first) checking exists to skip the lemmas the refutation
never uses — on realistic proofs most of them (solvers learn far more
than the final conflict needs). This benchmark generates a gen_drat
fixture whose dead fraction is by construction, runs the checker both
ways in both encodings, and gates:

* **prune** — the backward pass skips at least ``MIN_SKIP_FRACTION`` of
  the proof's add steps (the fixture is ~91% dead, so this has margin);
* **speed** — backward wall time is at most ``TIME_RATIO`` x forward on
  the same artifact (skipping work must actually be cheaper);
* **parity** — both encodings and both modes agree the proof verifies,
  and the two encodings' step streams are identical.

Usage:

    PYTHONPATH=src python benchmarks/bench_drat.py          # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_drat.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro.cnf import CnfFormula  # noqa: E402
from repro.proofs import DratChecker, read_proof  # noqa: E402
from tools.gen_drat import generate  # noqa: E402

#: The backward pass must skip at least this fraction of add steps.
MIN_SKIP_FRACTION = 0.30
#: Backward wall time vs forward on the same artifact. Full runs demand
#: an outright win; quick runs only guard against pathological regressions
#: (tiny fixtures make the ratio noisy).
TIME_RATIO = 1.0
QUICK_TIME_RATIO = 1.5

#: (core, dead, rat) block counts. The full fixture checks ~4.6k lemmas.
FULL_SHAPE = (400, 4000, 200)
QUICK_SHAPE = (30, 300, 15)


def run_one(formula: CnfFormula, proof: str, backward: bool) -> tuple[float, dict]:
    start = time.perf_counter()
    report = DratChecker(formula, proof, backward=backward).check()
    elapsed = time.perf_counter() - start
    if not report.verified:
        mode = "backward" if backward else "forward"
        raise SystemExit(f"{mode} check failed on {proof}: {report.failure}")
    return elapsed, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: small fixture, no JSON")
    parser.add_argument("--out", default="results/BENCH_drat.json")
    args = parser.parse_args(argv)

    core, dead, rat = QUICK_SHAPE if args.quick else FULL_SHAPE
    time_ratio = QUICK_TIME_RATIO if args.quick else TIME_RATIO
    inst = generate(core=core, dead=dead, rat=rat)
    formula = CnfFormula(inst.num_vars, [list(c) for c in inst.clauses])

    failures = []
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-drat-") as tmp_dir:
        proofs = {}
        for fmt in ("text", "binary"):
            path = os.path.join(tmp_dir, f"proof.{fmt}")
            inst.write_proof(path, fmt)
            proofs[fmt] = path
        if (read_proof(proofs["text"]).steps
                != read_proof(proofs["binary"]).steps):
            failures.append("text and binary encodings decode differently")

        for fmt, path in proofs.items():
            forward_s, forward = run_one(formula, path, backward=False)
            backward_s, backward = run_one(formula, path, backward=True)
            prune = backward.prune or {}
            ratio = backward_s / forward_s if forward_s else 0.0
            row = {
                "encoding": fmt,
                "proof_bytes": os.path.getsize(path),
                "adds": inst.num_adds,
                "forward_s": round(forward_s, 4),
                "backward_s": round(backward_s, 4),
                "backward_over_forward": round(ratio, 3),
                "verified_adds": prune.get("verified_adds"),
                "skipped": prune.get("skipped"),
                "dead_fraction": round(prune.get("dead_fraction", 0.0), 3),
                "rat_lemmas": forward.proof["rat_lemmas"],
            }
            rows.append(row)
            print(f"== {fmt}: fwd {forward_s:.3f}s  bwd {backward_s:.3f}s "
                  f"(x{ratio:.2f})  skipped {row['skipped']}/{row['adds']} "
                  f"({row['dead_fraction']:.0%} dead)")
            if prune.get("dead_fraction", 0.0) < MIN_SKIP_FRACTION:
                failures.append(
                    f"{fmt}: backward skipped only "
                    f"{prune.get('dead_fraction', 0.0):.0%} of add steps "
                    f"(gate: >= {MIN_SKIP_FRACTION:.0%})"
                )
            if ratio > time_ratio:
                failures.append(
                    f"{fmt}: backward took {ratio:.2f}x forward "
                    f"(gate: <= {time_ratio}x)"
                )

    if not args.quick:
        payload = {
            "benchmark": "DRAT forward vs backward checking",
            "fixture": {"core": core, "dead": dead, "rat": rat,
                        "num_vars": inst.num_vars,
                        "num_clauses": len(inst.clauses),
                        "adds": inst.num_adds},
            "gates": {"min_skip_fraction": MIN_SKIP_FRACTION,
                      "time_ratio": time_ratio},
            "rows": rows,
            "failures": failures,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all drat gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
