"""Fault-free overhead benchmark for the fault-injection plane.

Every durability-critical path in the checking service now routes through
``repro.faults`` — journal appends, cache entry/segment writes, claim and
finalize transitions, pool dispatch/collect, spool ingest. With no
``REPRO_FAULT_PLAN`` armed those calls must be close to free: the plane
is permanent instrumentation, not a test-build flag.

This benchmark times, interleaved best-of:

* **stubbed** — the same service bookkeeping workloads with
  ``faults.fault_point`` / ``faults.fault_write`` swapped for trivial
  passthroughs (what the code would cost had the plane been compiled
  out);
* **live** — the real plane, armed but with no plan in the environment
  (the production configuration).

Workloads are the write-heavy bookkeeping layers where nearly all fault
points live, chosen to be fork-free and deterministic so a tight gate is
meaningful:

* **journal** — ``JobStore``: submit / claim / finish N jobs (three
  instrumented journal appends per job plus the claim/finalize points);
* **cache** — ``VerdictCache`` in batch mode: put N verdicts through
  segment flushes, then look them all up.

The gate: **attributed** overhead — the workload's exact fault-plane
call count times the microbenchmarked per-call cost of an unarmed probe,
as a fraction of the workload time — must stay **below 2%**. End-to-end
paired deltas are reported alongside but not gated: on a shared box the
run-to-run noise of a ~0.7s filesystem workload is several percent,
an order of magnitude above the effect under measurement, so gating on
the delta would flap. Attribution is conservative (every call is charged
the full measured cost) and deterministic. Exits non-zero when the gate
fails.

Usage:

    PYTHONPATH=src python benchmarks/bench_chaos.py          # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import faults  # noqa: E402
from repro.checker.report import CheckReport  # noqa: E402
from repro.service.cache import VerdictCache  # noqa: E402
from repro.service.jobs import JobStore  # noqa: E402

#: Fault-free plane overhead ceiling, as a fraction of the stubbed time.
OVERHEAD_GATE = 0.02

#: Calls in the per-call microbenchmark of an unarmed fault_point.
MICRO_CALLS = 200_000


@contextmanager
def stubbed_plane():
    """Swap the plane for passthroughs: the cost had it never existed."""
    original_point, original_write = faults.fault_point, faults.fault_write

    def stub_point(point, key=None):
        return None

    def stub_write(point, handle, data, key=None):
        handle.write(data)

    faults.fault_point, faults.fault_write = stub_point, stub_write
    try:
        yield
    finally:
        faults.fault_point, faults.fault_write = original_point, original_write


def workload_journal(root: str, jobs: int) -> None:
    """Submit, claim and finish ``jobs`` jobs through one JobStore."""
    store = JobStore(os.path.join(root, "journal.jsonl"))
    try:
        for index in range(jobs):
            store.submit("/bench/a.cnf", "/bench/a.trace", {"i": index})
        while True:
            job = store.claim("bench-worker")
            if job is None:
                break
            store.finish(job, {"verified": True})
        if not store.all_terminal:
            raise SystemExit("journal workload left non-terminal jobs")
    finally:
        store.close()


def workload_cache(root: str, entries: int) -> None:
    """Batch-put ``entries`` verdicts through segment flushes, read back."""
    cache = VerdictCache(os.path.join(root, "cache"), max_entries=entries + 64,
                         batch_size=32)
    fingerprints = [
        {
            "formula_sha256": f"f-{index}",
            "trace_sha256": f"t-{index}",
            "options_sha256": f"o-{index}",
            "key": f"{index:064x}",
        }
        for index in range(entries)
    ]
    for fingerprint in fingerprints:
        cache.put(fingerprint, CheckReport(method="breadth-first", verified=True,
                                           total_learned=10, clauses_built=10,
                                           check_time=0.5))
    cache.flush()
    for fingerprint in fingerprints:
        if cache.get(fingerprint) is None:
            raise SystemExit(f"cache workload lost entry {fingerprint['key']}")


#: Where the workload directories live. Disk fsync latency is orders of
#: magnitude noisier than the nanosecond effect under measurement, so a
#: tmpfs (where fsync is near-free) is strongly preferred when present.
WORK_DIR = "/dev/shm" if os.path.isdir("/dev/shm") else None


def run_workloads(jobs: int, entries: int) -> float:
    with tempfile.TemporaryDirectory(prefix="bench-chaos-", dir=WORK_DIR) as root:
        start = time.perf_counter()
        workload_journal(root, jobs)
        workload_cache(root, entries)
        return time.perf_counter() - start


def micro_fault_point(rounds: int = 5) -> float:
    """Per-call nanoseconds of an unarmed fault_point (best-of)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(MICRO_CALLS):
            faults.fault_point("jobs.journal.append", key="state")
        best = min(best, (time.perf_counter() - start) / MICRO_CALLS * 1e9)
    return best


def count_plane_calls(jobs: int, entries: int) -> int:
    """Run the live workload once with counting probes; return the count."""
    counter = {"calls": 0}
    original_point, original_write = faults.fault_point, faults.fault_write

    def counting_point(point, key=None):
        counter["calls"] += 1
        return original_point(point, key=key)

    def counting_write(point, handle, data, key=None):
        counter["calls"] += 1
        return original_write(point, handle, data, key=key)

    faults.fault_point, faults.fault_write = counting_point, counting_write
    try:
        run_workloads(jobs, entries)
    finally:
        faults.fault_point, faults.fault_write = original_point, original_write
    return counter["calls"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: small workload, no JSON")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats (best-of)")
    parser.add_argument("--out", default="results/BENCH_chaos.json")
    args = parser.parse_args(argv)

    if os.environ.get(faults.PLAN_ENV):
        raise SystemExit(f"refusing to benchmark with {faults.PLAN_ENV} armed")

    if args.quick:
        jobs, entries = 300, 300
        repeats = args.repeats or 3
    else:
        jobs, entries = 2000, 2000
        repeats = args.repeats or 7

    faults.reset()
    per_call_ns = micro_fault_point()

    # Interleave, alternating which side goes first, so filesystem warmup
    # and machine noise land on both sides alike.
    stubbed_s = live_s = float("inf")
    for round_index in range(repeats):
        def time_stubbed():
            nonlocal stubbed_s
            with stubbed_plane():
                stubbed_s = min(stubbed_s, run_workloads(jobs, entries))

        def time_live():
            nonlocal live_s
            live_s = min(live_s, run_workloads(jobs, entries))

        sides = (time_stubbed, time_live)
        for side in (sides if round_index % 2 == 0 else reversed(sides)):
            side()

    plane_calls = count_plane_calls(jobs, entries)
    measured_delta_pct = 100.0 * (live_s - stubbed_s) / stubbed_s
    attributed_pct = 100.0 * (plane_calls * per_call_ns * 1e-9) / stubbed_s
    print(f"== fault_point (unarmed): {per_call_ns:.0f} ns/call")
    print(
        f"== bookkeeping x{jobs} jobs + {entries} cache entries: "
        f"stubbed {stubbed_s:.4f}s  live {live_s:.4f}s  "
        f"measured delta {measured_delta_pct:+.2f}% (informational)"
    )
    print(
        f"== attributed overhead: {plane_calls} plane calls x "
        f"{per_call_ns:.0f} ns = {attributed_pct:+.3f}% of the workload"
    )

    if not args.quick:
        payload = {
            "benchmark": "fault-injection plane fault-free overhead",
            "quick": False,
            "repeats": repeats,
            "jobs": jobs,
            "cache_entries": entries,
            "fault_point_ns": round(per_call_ns, 1),
            "plane_calls": plane_calls,
            "registered_points": len(faults.registered_points()),
            "gate_pct": 100.0 * OVERHEAD_GATE,
            "gated_overhead_pct": round(attributed_pct, 3),
            "measured_delta_pct": round(measured_delta_pct, 2),
            "stubbed_s": round(stubbed_s, 6),
            "live_s": round(live_s, 6),
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out} (gated overhead: {attributed_pct:+.3f}%)")
    if attributed_pct > 100.0 * OVERHEAD_GATE:
        print(
            f"FAIL: fault-plane overhead {attributed_pct:+.3f}% exceeds the "
            f"{100.0 * OVERHEAD_GATE:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    print(
        f"gate passed: overhead {attributed_pct:+.3f}% < "
        f"{100.0 * OVERHEAD_GATE:.0f}%"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
