"""Parallel windowed checking vs. the sequential checkers.

Times the :class:`~repro.checker.parallel.ParallelWindowedChecker` at 1, 2
and 4 workers against the depth-first and breadth-first baselines on the
pigeonhole / random-ksat suite, and drops a machine-readable summary in
``results/BENCH_parallel.json``. One worker isolates the windowing overhead
(pre-pass + interface re-derivation, no processes); 2/4 workers measure the
actual fan-out. Speedups only materialize on multi-second traces — run with
``REPRO_BENCH_SCALE=medium`` for the EXPERIMENTS.md-grade numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import bench_suite
from repro.checker import (
    BreadthFirstChecker,
    DepthFirstChecker,
    ParallelWindowedChecker,
)

NAMES = [instance.name for instance in bench_suite()]
WORKER_COUNTS = (1, 2, 4)
SUMMARY_PATH = Path(__file__).resolve().parent.parent / "results" / "BENCH_parallel.json"


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_check_parallel(benchmark, prepared_instances, name, workers):
    prepared = prepared_instances[name]

    def run():
        report = ParallelWindowedChecker(
            prepared.formula, prepared.binary_path, num_workers=workers
        ).check()
        assert report.verified
        return report

    benchmark.group = f"parallel-vs-sequential:{name}"
    benchmark(run)


@pytest.mark.parametrize("name", NAMES)
def test_check_breadth_first_baseline(benchmark, prepared_instances, name):
    prepared = prepared_instances[name]

    def run():
        report = BreadthFirstChecker(prepared.formula, prepared.binary_path).check()
        assert report.verified
        return report

    benchmark.group = f"parallel-vs-sequential:{name}"
    benchmark(run)


def test_write_summary(prepared_instances):
    """Manual timing sweep; writes the BENCH_parallel.json summary table."""
    rows = []
    for prepared in prepared_instances.values():
        timings: dict[str, float] = {}
        parallel_reports = {}
        start = time.perf_counter()
        df = DepthFirstChecker(prepared.formula, prepared.trace).check()
        timings["df"] = time.perf_counter() - start
        assert df.verified
        start = time.perf_counter()
        bf = BreadthFirstChecker(prepared.formula, prepared.binary_path).check()
        timings["bf"] = time.perf_counter() - start
        assert bf.verified
        for workers in WORKER_COUNTS:
            start = time.perf_counter()
            report = ParallelWindowedChecker(
                prepared.formula, prepared.binary_path, num_workers=workers
            ).check()
            timings[f"parallel_{workers}"] = time.perf_counter() - start
            assert report.verified
            parallel_reports[workers] = report
        four = parallel_reports[4]
        rows.append(
            {
                "instance": prepared.name,
                "num_learned": four.total_learned,
                "num_windows": len(four.window_stats or []),
                "interface_imports": sum(
                    s["num_imports"] for s in four.window_stats or []
                ),
                "peak_units": {
                    "bf": bf.peak_memory_units,
                    "parallel_4": four.peak_memory_units,
                },
                "seconds": {k: round(v, 6) for k, v in timings.items()},
                "speedup_1w_vs_bf": round(
                    timings["bf"] / max(timings["parallel_1"], 1e-9), 2
                ),
                "speedup_2w_vs_bf": round(
                    timings["bf"] / max(timings["parallel_2"], 1e-9), 2
                ),
                "speedup_4w_vs_bf": round(
                    timings["bf"] / max(timings["parallel_4"], 1e-9), 2
                ),
                "speedup_4w_vs_1w": round(
                    timings["parallel_1"] / max(timings["parallel_4"], 1e-9), 2
                ),
            }
        )
    SUMMARY_PATH.parent.mkdir(exist_ok=True)
    SUMMARY_PATH.write_text(json.dumps({"rows": rows}, indent=2) + "\n")
    assert rows, "no prepared instances"
