"""Checking-service benchmark: cache speedup, worker scaling, shard drill.

Measurements, written to ``results/BENCH_service.json``:

* **cold vs warm cache** — the same ``ServiceClient.check`` call twice
  against a fresh verdict cache. The first run replays resolution; the
  second is a fingerprint plus one file read. Gate: the warm check must
  be at least **10x** faster than the cold one on the largest instance.
* **cold-population throughput** — jobs with *distinct* content keys
  (no dedup, no cache sharing: every job pays for a real check) drained
  through the pre-forked process pool at 1, 2 and 4 workers. The job
  count **scales with the worker count** (fixed work per worker), so
  each row measures steady-state jobs/s rather than amortizing the same
  tiny batch over more workers. Per-job RUNNING -> DONE latency
  percentiles come straight from the journal timestamps.
* **warm-population throughput** — N identical jobs through one
  scheduler with the cache on: one real check, N-1 verdict-cache serves.
  This isolates the cache-hit serving rate from checking throughput.
* **thread-mode contrast** (full mode only) — the same cold population
  on the legacy ``ThreadWorkerPool``, documenting what the GIL does to
  a CPU-bound fleet.
* **sharded drill** — one spool, two ``repro serve --once`` processes
  owning disjoint shards, every job checked exactly once.

The scaling gate is **hardware-conditional and honest**: with >= 4 CPU
cores the 4-worker configuration must reach **3.0x** the 1-worker
jobs/s; on smaller hosts (this includes 1-core CI containers, where
parallel speedup is physically impossible) the gate degrades to a
**monotonicity floor** — 4 workers must not fall below 0.9x of 1 worker,
which still catches the original negative-scaling regression (0.77x on
the thread scheduler). ``cpu_count`` and the applied gate are recorded
in the JSON so no reader mistakes a floor pass for a speedup claim.

Usage:

    PYTHONPATH=src python benchmarks/bench_service.py          # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_service.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cnf import CnfFormula  # noqa: E402
from repro.generators.pigeonhole import pigeonhole  # noqa: E402
from repro.service import (  # noqa: E402
    CheckDaemon,
    JobStore,
    Scheduler,
    ServiceClient,
    ShardedJobStore,
    VerdictCache,
    discover_shard_journals,
    submit_job,
)
from repro.cnf.dimacs import write_dimacs_file  # noqa: E402
from repro.solver import solve_formula  # noqa: E402
from repro.trace.io import open_trace_writer  # noqa: E402

#: The warm-cache check must be at least this many times faster than cold.
SPEEDUP_GATE = 10.0

#: Required 4-worker/1-worker jobs/s ratio when the host has >= 4 cores.
SCALING_GATE = 3.0

#: On hosts with < 4 cores a parallel speedup is physically impossible;
#: the gate degrades to "adding workers must not make the service slower"
#: (the seed regressed to 0.77x, so 0.9 catches it with margin).
MONOTONICITY_FLOOR = 0.9


def effective_scaling_gate(cpu_count: int, quick: bool) -> float:
    if cpu_count >= 4:
        return SCALING_GATE if not quick else 1.0
    return MONOTONICITY_FLOOR


def prepare(pigeons: int, holes: int, tmp_dir: str) -> tuple[CnfFormula, str, str]:
    formula = pigeonhole(pigeons, holes)
    cnf = os.path.join(tmp_dir, f"php_{pigeons}_{holes}.cnf")
    write_dimacs_file(formula, cnf)
    path = os.path.join(tmp_dir, f"php_{pigeons}_{holes}.rtb")
    writer = open_trace_writer(path, fmt="binary")
    result = solve_formula(formula, trace_writer=writer)
    writer.close()
    if result.status != "UNSAT":
        raise SystemExit(f"php({pigeons},{holes}) did not come back UNSAT")
    return formula, cnf, path


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[index]


def journal_latencies(spool: str) -> list[float]:
    """Per-job RUNNING -> terminal latency, from the journal's own stamps."""
    started: dict[str, float] = {}
    latencies: list[float] = []
    for journal in discover_shard_journals(spool):
        for line in journal.read_text(encoding="utf-8").splitlines():
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if event.get("event") != "state":
                continue
            if event["state"] == "RUNNING":
                started[event["job_id"]] = event["t"]
            elif event["state"] in ("DONE", "FAILED") and event["job_id"] in started:
                latencies.append(event["t"] - started.pop(event["job_id"]))
    return latencies


def latency_row(spool: str) -> dict:
    latencies = sorted(journal_latencies(spool))
    return {
        "latency_p50_s": round(percentile(latencies, 0.50), 6),
        "latency_p90_s": round(percentile(latencies, 0.90), 6),
        "latency_p99_s": round(percentile(latencies, 0.99), 6),
    }


def bench_cache(formula: CnfFormula, trace: str, tmp_dir: str, repeats: int) -> dict:
    """Best-of cold and warm times for one instance, one cache each round."""
    cold_s = warm_s = float("inf")
    for round_index in range(repeats):
        cache_dir = os.path.join(tmp_dir, f"cache-{round_index}")
        client = ServiceClient(cache=VerdictCache(cache_dir))
        start = time.perf_counter()
        cold = client.check(formula, trace, method="bf")
        cold_s = min(cold_s, time.perf_counter() - start)
        start = time.perf_counter()
        warm = client.check(formula, trace, method="bf")
        warm_s = min(warm_s, time.perf_counter() - start)
        if not (cold.verified and warm.verified and warm.from_cache):
            raise SystemExit("cache benchmark run did not verify or did not hit")
    return {
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else float("inf"),
    }


def bench_cold_throughput(
    cnf: str,
    trace: str,
    tmp_dir: str,
    jobs_per_worker: int,
    worker_counts: tuple[int, ...],
    exec_mode: str = "process",
) -> list[dict]:
    """Distinct-key jobs, cache off: every job is a full resolution check.

    The job count scales with the worker count so every configuration
    keeps its workers saturated for the same wall-span of work per
    worker — comparing jobs/s across rows is then a statement about the
    execution layer, not about batch-size amortization.
    """
    rows = []
    for workers in worker_counts:
        num_jobs = jobs_per_worker * workers
        spool = os.path.join(tmp_dir, f"spool-{exec_mode}-w{workers}")
        for job_index in range(num_jobs):
            # Distinct timeouts make distinct content keys: no dedup, no
            # cache sharing between jobs.
            submit_job(spool, cnf, trace, {"method": "bf", "timeout": 3600.0 + job_index})
        daemon = CheckDaemon(
            spool, num_workers=workers, use_cache=False, exec_mode=exec_mode
        )
        start = time.perf_counter()
        daemon.run_once()
        elapsed = time.perf_counter() - start
        counts = daemon.store.counts()
        if counts["DONE"] != num_jobs:
            raise SystemExit(f"throughput run left jobs undone: {counts}")
        rows.append(
            {
                "workers": workers,
                "jobs": num_jobs,
                "elapsed_s": round(elapsed, 6),
                "jobs_per_s": round(num_jobs / elapsed, 2),
                **latency_row(spool),
            }
        )
    return rows


def bench_warm_throughput(
    cnf: str, trace: str, tmp_dir: str, num_jobs: int, workers: int
) -> dict:
    """Identical jobs, cache on: one real check, the rest served from cache.

    Submitted straight into a JobStore (the spool's dedup would collapse
    identical submissions into one job, which is the *other* answer to
    duplicate work — here the point is to measure verdict-serving rate).
    """
    root = Path(tmp_dir) / "warm-population"
    store = JobStore(root / "journal.jsonl")
    client = ServiceClient(cache=VerdictCache(root / "cache", batch_size=16))
    scheduler = Scheduler(store, client, num_workers=workers)
    for _ in range(num_jobs):
        store.submit(cnf, trace, {"method": "bf"})
    start = time.perf_counter()
    scheduler.drain()
    elapsed = time.perf_counter() - start
    served = scheduler.metrics.counter("jobs.served_from_cache").value
    done = scheduler.metrics.counter("jobs.done").value
    store.close()
    if done != num_jobs:
        raise SystemExit(f"warm population left jobs undone: {done}/{num_jobs}")
    return {
        "workers": workers,
        "jobs": num_jobs,
        "served_from_cache": served,
        "elapsed_s": round(elapsed, 6),
        "jobs_per_s": round(num_jobs / elapsed, 2),
    }


def bench_sharded_drill(cnf: str, trace: str, tmp_dir: str, num_jobs: int) -> dict:
    """Two serve --once instances, disjoint shards, one spool: exactly once."""
    spool = os.path.join(tmp_dir, "spool-sharded")
    for job_index in range(num_jobs):
        submit_job(spool, cnf, trace, {"method": "bf", "timeout": 7200.0 + job_index})
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    start = time.perf_counter()
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", spool,
             "--once", "--workers", "1", "--shards", "2", "--own", str(own)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        for own in (0, 1)
    ]
    codes = [proc.wait(timeout=600) for proc in procs]
    elapsed = time.perf_counter() - start
    if any(codes):
        raise SystemExit(f"sharded drill instances exited with {codes}")
    store = ShardedJobStore(spool, num_shards=2, readonly=True)
    jobs = store.jobs()
    per_shard = {0: 0, 1: 0}
    for job in jobs:
        if job.state.value != "DONE" or job.attempts != 1:
            raise SystemExit(
                f"sharded drill violated exactly-once: {job.job_id} "
                f"{job.state.value} attempts={job.attempts}"
            )
        per_shard[int(job.job_id.split("-")[1][1:])] += 1
    if len(jobs) != num_jobs:
        raise SystemExit(f"sharded drill lost jobs: {len(jobs)}/{num_jobs}")
    return {
        "instances": 2,
        "shards": 2,
        "jobs": num_jobs,
        "jobs_per_shard": [per_shard[0], per_shard[1]],
        "elapsed_s": round(elapsed, 6),
        "exactly_once": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: small instance, no JSON")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats (best-of)")
    parser.add_argument("--out", default="results/BENCH_service.json")
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    if args.quick:
        cache_instances = [(6, 5)]
        repeats = args.repeats or 2
        jobs_per_worker, worker_counts = 2, (1, 4)
        warm_jobs, drill_jobs = 6, 4
    else:
        cache_instances = [(8, 7), (9, 8)]
        repeats = args.repeats or 5
        jobs_per_worker, worker_counts = 4, (1, 2, 4)
        warm_jobs, drill_jobs = 12, 8
    scaling_gate = effective_scaling_gate(cpu_count, args.quick)

    cache_rows = []
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp_dir:
        for pigeons, holes in cache_instances:
            formula, cnf, trace = prepare(pigeons, holes, tmp_dir)
            row = {
                "instance": f"php({pigeons},{holes})",
                "num_vars": formula.num_vars,
                "num_clauses": formula.num_clauses,
                **bench_cache(formula, trace, tmp_dir, repeats),
            }
            cache_rows.append(row)
            print(
                f"== {row['instance']}: cold {row['cold_s']:.4f}s  "
                f"warm {row['warm_s']:.6f}s  speedup {row['speedup']:.0f}x"
            )

        # Throughput over the largest prepared instance.
        throughput_rows = bench_cold_throughput(
            cnf, trace, tmp_dir, jobs_per_worker, worker_counts, exec_mode="process"
        )
        for row in throughput_rows:
            print(
                f"== cold queue [process]: {row['jobs']} jobs @ "
                f"{row['workers']} worker(s): {row['elapsed_s']:.3f}s  "
                f"({row['jobs_per_s']:.1f} jobs/s, p50 {row['latency_p50_s']:.3f}s, "
                f"p99 {row['latency_p99_s']:.3f}s)"
            )
        thread_rows = []
        if not args.quick:
            thread_rows = bench_cold_throughput(
                cnf, trace, tmp_dir, jobs_per_worker,
                (worker_counts[0], worker_counts[-1]), exec_mode="thread",
            )
            for row in thread_rows:
                print(
                    f"== cold queue [thread]:  {row['jobs']} jobs @ "
                    f"{row['workers']} worker(s): {row['elapsed_s']:.3f}s  "
                    f"({row['jobs_per_s']:.1f} jobs/s)"
                )
        warm_row = bench_warm_throughput(cnf, trace, tmp_dir, warm_jobs, workers=2)
        print(
            f"== warm queue: {warm_row['jobs']} jobs, "
            f"{warm_row['served_from_cache']} from cache: "
            f"{warm_row['elapsed_s']:.3f}s ({warm_row['jobs_per_s']:.1f} jobs/s)"
        )
        drill_row = bench_sharded_drill(cnf, trace, tmp_dir, drill_jobs)
        print(
            f"== sharded drill: {drill_row['jobs']} jobs over "
            f"{drill_row['instances']} instances "
            f"({drill_row['jobs_per_shard']} per shard), exactly-once: "
            f"{drill_row['exactly_once']}"
        )

    base = next(r for r in throughput_rows if r["workers"] == worker_counts[0])
    peak = next(r for r in throughput_rows if r["workers"] == worker_counts[-1])
    scaling = peak["jobs_per_s"] / base["jobs_per_s"] if base["jobs_per_s"] else 0.0
    gated_speedup = cache_rows[-1]["speedup"]

    if not args.quick:
        payload = {
            "benchmark": "checking service: verdict cache, worker scaling, shard drill",
            "quick": False,
            "repeats": repeats,
            "cpu_count": cpu_count,
            "gate_speedup": SPEEDUP_GATE,
            "gated_speedup": gated_speedup,
            "scaling_gate": scaling_gate,
            "scaling_gate_kind": (
                "parallel-speedup" if scaling_gate >= SCALING_GATE else "monotonicity-floor"
            ),
            "scaling_achieved": round(scaling, 2),
            "cache": cache_rows,
            "throughput": throughput_rows,
            "thread_throughput": thread_rows,
            "warm_throughput": warm_row,
            "sharded_drill": drill_row,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out} (warm-cache speedup: {gated_speedup:.0f}x)")

    failed = False
    if gated_speedup < SPEEDUP_GATE:
        print(
            f"FAIL: warm-cache speedup {gated_speedup:.1f}x is below the "
            f"{SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        failed = True
    if scaling < scaling_gate:
        print(
            f"FAIL: {peak['workers']}-worker throughput is {scaling:.2f}x the "
            f"1-worker rate, below the {scaling_gate:.1f}x gate "
            f"(cpu_count={cpu_count})",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        f"gates passed: warm-cache {gated_speedup:.0f}x >= {SPEEDUP_GATE:.0f}x; "
        f"scaling {scaling:.2f}x >= {scaling_gate:.1f}x "
        f"({peak['workers']} vs 1 worker on {cpu_count} core(s))"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
