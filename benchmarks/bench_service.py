"""Checking-service benchmark: verdict-cache speedup and queue throughput.

Two measurements, written to ``results/BENCH_service.json``:

* **cold vs warm cache** — the same ``ServiceClient.check`` call twice
  against a fresh verdict cache. The first run replays resolution; the
  second is a fingerprint plus one file read. The gate: the warm check
  must be at least **10x** faster than the cold one on the largest
  instance. Exits non-zero when the gate fails.
* **queue throughput** — a spool of distinct jobs drained by the
  scheduler at 1, 2 and 4 workers (cache disabled, so every job pays for
  a real check). Workers are threads sharing the interpreter, so this
  charts dispatch overhead and fairness, not parallel speedup.

Usage:

    PYTHONPATH=src python benchmarks/bench_service.py          # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_service.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cnf import CnfFormula  # noqa: E402
from repro.generators.pigeonhole import pigeonhole  # noqa: E402
from repro.service import CheckDaemon, ServiceClient, VerdictCache, submit_job  # noqa: E402
from repro.cnf.dimacs import write_dimacs_file  # noqa: E402
from repro.solver import solve_formula  # noqa: E402
from repro.trace.io import open_trace_writer  # noqa: E402

#: The warm-cache check must be at least this many times faster than cold.
SPEEDUP_GATE = 10.0


def prepare(pigeons: int, holes: int, tmp_dir: str) -> tuple[CnfFormula, str, str]:
    formula = pigeonhole(pigeons, holes)
    cnf = os.path.join(tmp_dir, f"php_{pigeons}_{holes}.cnf")
    write_dimacs_file(formula, cnf)
    path = os.path.join(tmp_dir, f"php_{pigeons}_{holes}.rtb")
    writer = open_trace_writer(path, fmt="binary")
    result = solve_formula(formula, trace_writer=writer)
    writer.close()
    if result.status != "UNSAT":
        raise SystemExit(f"php({pigeons},{holes}) did not come back UNSAT")
    return formula, cnf, path


def bench_cache(formula: CnfFormula, trace: str, tmp_dir: str, repeats: int) -> dict:
    """Best-of cold and warm times for one instance, one cache each round."""
    cold_s = warm_s = float("inf")
    for round_index in range(repeats):
        cache_dir = os.path.join(tmp_dir, f"cache-{round_index}")
        client = ServiceClient(cache=VerdictCache(cache_dir))
        start = time.perf_counter()
        cold = client.check(formula, trace, method="bf")
        cold_s = min(cold_s, time.perf_counter() - start)
        start = time.perf_counter()
        warm = client.check(formula, trace, method="bf")
        warm_s = min(warm_s, time.perf_counter() - start)
        if not (cold.verified and warm.verified and warm.from_cache):
            raise SystemExit("cache benchmark run did not verify or did not hit")
    return {
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else float("inf"),
    }


def bench_throughput(
    cnf: str, trace: str, tmp_dir: str, num_jobs: int, worker_counts: tuple[int, ...]
) -> list[dict]:
    """Drain ``num_jobs`` distinct jobs at each worker count; jobs/second."""
    rows = []
    for workers in worker_counts:
        spool = os.path.join(tmp_dir, f"spool-w{workers}")
        for job_index in range(num_jobs):
            # Distinct timeouts make distinct content keys: no dedup, no
            # cache sharing between jobs.
            submit_job(spool, cnf, trace, {"method": "bf", "timeout": 3600.0 + job_index})
        daemon = CheckDaemon(spool, num_workers=workers, use_cache=False)
        start = time.perf_counter()
        daemon.run_once()
        elapsed = time.perf_counter() - start
        counts = daemon.store.counts()
        if counts["DONE"] != num_jobs:
            raise SystemExit(f"throughput run left jobs undone: {counts}")
        rows.append(
            {
                "workers": workers,
                "jobs": num_jobs,
                "elapsed_s": round(elapsed, 6),
                "jobs_per_s": round(num_jobs / elapsed, 2),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: small instance, no JSON")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats (best-of)")
    parser.add_argument("--out", default="results/BENCH_service.json")
    args = parser.parse_args(argv)

    if args.quick:
        cache_instances = [(6, 5)]
        repeats = args.repeats or 2
        num_jobs, worker_counts = 4, (1, 2)
    else:
        cache_instances = [(8, 7), (9, 8)]
        repeats = args.repeats or 5
        num_jobs, worker_counts = 8, (1, 2, 4)

    cache_rows = []
    throughput_rows = []
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp_dir:
        for pigeons, holes in cache_instances:
            formula, cnf, trace = prepare(pigeons, holes, tmp_dir)
            row = {
                "instance": f"php({pigeons},{holes})",
                "num_vars": formula.num_vars,
                "num_clauses": formula.num_clauses,
                **bench_cache(formula, trace, tmp_dir, repeats),
            }
            cache_rows.append(row)
            print(
                f"== {row['instance']}: cold {row['cold_s']:.4f}s  "
                f"warm {row['warm_s']:.6f}s  speedup {row['speedup']:.0f}x"
            )
        # Throughput over the largest prepared instance.
        throughput_rows = bench_throughput(cnf, trace, tmp_dir, num_jobs, worker_counts)
        for row in throughput_rows:
            print(
                f"== queue: {row['jobs']} jobs @ {row['workers']} worker(s): "
                f"{row['elapsed_s']:.3f}s  ({row['jobs_per_s']:.1f} jobs/s)"
            )

    # Gate on the largest instance: the cache's value proposition is that
    # re-checks are near-free precisely when checks are expensive.
    gated = cache_rows[-1]["speedup"]
    if not args.quick:
        payload = {
            "benchmark": "checking service: verdict cache and queue throughput",
            "quick": False,
            "repeats": repeats,
            "gate_speedup": SPEEDUP_GATE,
            "gated_speedup": gated,
            "cache": cache_rows,
            "throughput": throughput_rows,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out} (warm-cache speedup: {gated:.0f}x)")
    if gated < SPEEDUP_GATE:
        print(
            f"FAIL: warm-cache speedup {gated:.1f}x is below the "
            f"{SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    print(f"gate passed: warm-cache speedup {gated:.0f}x >= {SPEEDUP_GATE:.0f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
