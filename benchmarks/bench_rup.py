"""Extension: RUP (DRUP) proof checking vs resolution-trace checking.

Resolution traces replay exact resolutions; RUP re-derives each clause by
unit propagation and is typically slower per clause but needs no resolve
sources in the proof — the trade-off that shaped later proof formats.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_suite
from repro.checker import DrupWriter, RupChecker
from repro.solver import Solver, SolverConfig

# RUP checking is O(propagation) per learned clause: keep to lighter instances.
NAMES = [instance.name for instance in bench_suite()][:6]


@pytest.fixture(scope="module")
def drup_proofs(tmp_path_factory):
    directory = tmp_path_factory.mktemp("drup")
    proofs = {}
    for instance in bench_suite():
        if instance.name not in NAMES:
            continue
        formula = instance.build()
        path = directory / f"{instance.name}.drup"
        result = Solver(formula, SolverConfig(), drup_writer=DrupWriter(path)).solve()
        assert result.is_unsat
        proofs[instance.name] = (formula, path)
    return proofs


@pytest.mark.parametrize("name", NAMES)
def test_rup_check(benchmark, drup_proofs, name):
    formula, path = drup_proofs[name]

    def run():
        report = RupChecker(formula, path).check()
        assert report.verified, report.summary()
        return report

    benchmark.group = f"rup:{name}"
    benchmark(run)
