"""SAT-based test pattern generation with validated verdicts.

The first application on the paper's list. For each stuck-at fault we
either produce a test vector (confirmed by fault simulation) or a
*checked resolution proof* that the fault is untestable — i.e. the logic
it sits on is redundant.

Run:  python examples/atpg_fault_testing.py
"""

from repro.apps import StuckAtFault, enumerate_faults, run_atpg
from repro.circuits import Circuit


def build_alu_slice() -> Circuit:
    """A 1-bit ALU slice with a deliberately redundant gate.

    out = op ? (a AND b) : (a XOR b), plus a masked gate that can never
    influence the output — its faults are untestable.
    """
    circuit = Circuit(name="alu_slice")
    op, a, b = circuit.add_inputs(3)
    and_net = circuit.and_(a, b)
    xor_net = circuit.xor(a, b)
    result = circuit.mux(op, xor_net, and_net)
    # Redundancy: OR the result with (a AND NOT a) == 0. The AND gate's
    # output is always 0, so its stuck-at-0 fault cannot be observed.
    dead = circuit.and_(a, circuit.not_(a))
    circuit.mark_output(circuit.or_(result, dead))
    return circuit


def main() -> None:
    circuit = build_alu_slice()
    faults = enumerate_faults(circuit)
    print(f"circuit: {circuit.num_gates} gates, {len(faults)} stuck-at faults")

    report = run_atpg(circuit)
    print(
        f"fault coverage: {report.fault_coverage:.0%} "
        f"({len(report.testable)} testable, {len(report.untestable)} untestable)\n"
    )

    shown = 0
    for result in report.testable:
        if shown == 4:
            break
        vector = "".join("1" if bit else "0" for bit in result.vector)
        print(
            f"  {str(result.fault):12s} test vector (op,a,b)={vector}  "
            f"good={result.good_outputs} faulty={result.faulty_outputs}"
        )
        shown += 1

    print()
    for result in report.untestable:
        assert result.proof_report is not None and result.proof_report.verified
        print(
            f"  {str(result.fault):12s} UNTESTABLE — redundancy proven by a "
            f"checked resolution proof "
            f"({result.proof_report.clauses_built} clauses rebuilt)"
        )


if __name__ == "__main__":
    main()
