"""Catching a buggy SAT solver — the paper's reason to exist.

"During the recent SAT 2002 solver competition, quite a few submitted SAT
solvers were found to be buggy. Thus, a rigorous checker is needed to
validate the solvers."

We run a solver whose conflict analysis silently drops literals from
learned clauses (an unsound-learning bug) until it claims UNSAT on a
formula that is actually satisfiable, then show the checker rejecting the
proof with an actionable diagnostic.

Run:  python examples/debug_buggy_solver.py
"""

from repro.checker import DepthFirstChecker
from repro.generators import random_ksat
from repro.solver import SolverConfig
from repro.solver.buggy import UnsoundLearningSolver
from repro.solver.reference import reference_is_satisfiable
from repro.trace import InMemoryTraceWriter


def main() -> None:
    for seed in range(100):
        formula = random_ksat(18, 70, seed=seed)
        if not reference_is_satisfiable(formula):
            continue  # we want a SAT formula the buggy solver gets wrong

        writer = InMemoryTraceWriter()
        solver = UnsoundLearningSolver(
            formula,
            config=SolverConfig(seed=seed, max_conflicts=5000),
            trace_writer=writer,
            drop_period=2,
        )
        result = solver.solve()
        if not result.is_unsat:
            continue  # the bug didn't bite on this instance; try another

        print(f"seed {seed}: formula is SATISFIABLE, but the buggy solver says UNSAT")
        report = DepthFirstChecker(formula, writer.to_trace()).check()
        assert not report.verified, "the checker MUST reject this proof"
        print(f"checker verdict: Check Failed")
        print(f"  failure kind : {report.failure.kind.value}")
        print(f"  diagnostic   : {report.failure}")
        print(f"  context      : {report.failure.context}")
        print(
            "\nthe structured context names the clause IDs involved — the "
            "starting point for debugging the solver, exactly as §3.2 describes"
        )
        return

    raise SystemExit("no wrong claim in 100 seeds — tune drop_period")


if __name__ == "__main__":
    main()
