"""Bounded model checking with validated UNSAT answers.

The paper's bounded-model-checking workload (barrel/longmult): unroll a
transition system k steps and ask whether a bad state is reachable. The
interesting answer is UNSAT — "the property holds through k steps" — and
that is exactly the answer that needs an independent proof check before a
sign-off.

Run:  python examples/bmc_safety.py
"""

from repro.bmc import bmc_cnf, counter_system, lfsr_system, token_ring_system
from repro.checker import BreadthFirstChecker
from repro.solver import Solver, SolverConfig
from repro.trace import InMemoryTraceWriter


def check_property(name: str, system, bound: int) -> None:
    formula = bmc_cnf(system, bound)
    writer = InMemoryTraceWriter()
    result = Solver(formula, SolverConfig(), trace_writer=writer).solve()

    if result.is_sat:
        print(f"{name} @ bound {bound}: counterexample exists (bad state reachable)")
        return

    report = BreadthFirstChecker(formula, writer.to_trace()).check()
    status = "holds (proof VERIFIED)" if report.verified else "PROOF REJECTED"
    print(
        f"{name} @ bound {bound}: property {status} — "
        f"{formula.num_vars} vars, {result.stats.conflicts} conflicts, "
        f"checker peak {report.peak_memory_units} units"
    )
    assert report.verified


def main() -> None:
    # 1. A gated counter cannot reach 12 in 11 steps, whatever the enables do.
    check_property(
        "counter(width=5, bad=12, free enable)",
        counter_system(5, bad_value=12, with_enable=True),
        bound=11,
    )
    # ... but it can in 12 steps (counterexample, validated in linear time).
    check_property(
        "counter(width=5, bad=12, free enable)",
        counter_system(5, bad_value=12, with_enable=True),
        bound=12,
    )

    # 2. A rotating one-hot token never duplicates or disappears.
    check_property("token ring (6 stations)", token_ring_system(6), bound=10)

    # 3. An LFSR started at ANY non-zero seed never reaches zero: the
    #    XOR-heavy structure behind the paper's longmult observation.
    check_property("LFSR (width 8, non-zero seed)", lfsr_system(8), bound=14)


if __name__ == "__main__":
    main()
