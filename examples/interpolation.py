"""Craig interpolation from checked resolution proofs.

One of the most influential uses of the proofs this library validates
(McMillan, CAV 2003): from a refutation of A AND B, compute a formula I
over the shared variables with A => I and I AND B unsatisfiable. In
model checking, A is "the first k steps of the unrolling" and I becomes
an overapproximate image of the states reachable at step k.

Run:  python examples/interpolation.py
"""

from repro.bmc import counter_system, unroll
from repro.circuits.tseitin import tseitin_encode
from repro.interp import compute_interpolant, verify_interpolant
from repro.solver import Solver, SolverConfig
from repro.trace import InMemoryTraceWriter


def main() -> None:
    # BMC of a 4-bit enabled counter: bad value 9 is unreachable in 6 steps.
    system = counter_system(4, bad_value=9, with_enable=True)
    steps = 6
    split_step = 3

    formula, state_vars = unroll(system, steps)
    # Bad-state constraint at the final step only.
    bindings = dict(zip(system.bad.inputs, state_vars[steps]))
    encoded = tseitin_encode(system.bad, formula, bindings=bindings)
    formula.add_clause([encoded.var(system.bad.outputs[0])])

    writer = InMemoryTraceWriter()
    result = Solver(formula, SolverConfig(), trace_writer=writer).solve()
    assert result.is_unsat, "property must hold within the bound"
    print(f"BMC({steps} steps) of counter: UNSAT — bad state unreachable")

    # Partition: A = everything whose variables live at steps 0..split_step;
    # B = the rest. The shared variables are exactly the state at the split.
    split_frontier = set(state_vars[split_step])
    max_a_var = max(split_frontier)
    a_ids = set()
    for clause in formula:
        if all(abs(lit) <= max_a_var for lit in clause.literals):
            a_ids.add(clause.cid)

    interpolant = compute_interpolant(formula, writer.to_trace(), a_ids)
    print(
        f"interpolant over {len(interpolant.input_vars)} shared variables, "
        f"{interpolant.circuit.num_gates} gates"
    )
    assert verify_interpolant(formula, a_ids, interpolant)
    print("both obligations verified: A => I and I & B is UNSAT")

    # Sanity: the concrete reachable states at the split satisfy I.
    # After `split_step` steps the counter is between 0 and split_step.
    frontier_vars = sorted(state_vars[split_step])
    for value in range(split_step + 1):
        assignment = {}
        for bit, var in enumerate(frontier_vars):
            assignment[var] = bool((value >> bit) & 1)
        # Default any other shared variable (step-to-step wiring) to False.
        for var in interpolant.input_vars:
            assignment.setdefault(var, False)
        if set(interpolant.input_vars) <= set(assignment):
            holds = interpolant.evaluate(assignment)
            print(f"  I(counter == {value} at step {split_step}) = {holds}")


if __name__ == "__main__":
    main()
