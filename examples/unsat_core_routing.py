"""Explaining an un-routable FPGA channel with an unsatisfiable core (§4).

"In FPGA routing, an unsatisfiable instance means that the channels are
un-routable. The unsatisfiable core can help the designers concentrate on
the reasons (constraints) that are responsible for the routing failure."

We build a channel with one congested region plus lots of easily-routable
nets, show the instance is UNSAT, and use iterated core extraction to
reduce the blame to exactly the congested nets.

Run:  python examples/unsat_core_routing.py
"""

from repro.core_extract import iterate_core
from repro.generators import RoutingNet, channel_routing


def main() -> None:
    tracks = 4
    # Five nets all crossing columns 0-4: one more than the channel holds.
    congested = [RoutingNet(0, 4 + i) for i in range(tracks + 1)]
    # Twenty short nets in disjoint columns: trivially routable.
    easy = [RoutingNet(100 + 10 * i, 102 + 10 * i) for i in range(20)]
    nets = congested + easy

    formula = channel_routing(nets, tracks)
    print(
        f"channel: {len(nets)} nets, {tracks} tracks -> "
        f"{formula.num_vars} vars, {formula.num_clauses} clauses"
    )

    outcome = iterate_core(formula, max_iterations=30)
    print("\niterated unsat-core extraction (Table 3 procedure):")
    for index, (clauses, variables) in enumerate(outcome.iterations):
        label = "input " if index == 0 else f"iter {index}"
        print(f"  {label}: {clauses:4d} clauses, {variables:3d} variables")
    if outcome.reached_fixed_point:
        print(f"  fixed point after {outcome.num_iterations} iterations")

    # Map core clauses back to nets: variables are x(net, track).
    blamed_nets = set()
    for cid in outcome.final_core_ids:
        for lit in formula[cid].literals:
            blamed_nets.add((abs(lit) - 1) // tracks)

    print(f"\nnets blamed by the core: {sorted(blamed_nets)}")
    print(f"(the congested nets are 0..{len(congested) - 1}; "
          f"the {len(easy)} easy nets are exonerated)")
    assert blamed_nets <= set(range(len(congested))), "core must blame only congestion"


if __name__ == "__main__":
    main()
