"""Combinational equivalence checking with a validated UNSAT answer.

The EDA scenario from the paper's introduction: a synthesis-style rewrite
of a circuit must be proven equivalent to the original. The SAT solver
answers UNSAT on the miter ("no distinguishing input exists"); because the
claim is mission-critical, the resolution checker validates the proof
before the result is trusted.

Run:  python examples/equivalence_checking.py
"""

from repro.checker import DepthFirstChecker
from repro.circuits import (
    carry_select_adder,
    equivalence_cnf,
    random_circuit,
    rewritten_copy,
    ripple_carry_adder,
)
from repro.solver import Solver, SolverConfig
from repro.trace import InMemoryTraceWriter


def check_equivalence(name: str, left, right) -> None:
    formula = equivalence_cnf(left, right)
    writer = InMemoryTraceWriter()
    result = Solver(formula, SolverConfig(), trace_writer=writer).solve()

    if result.is_sat:
        # A satisfying assignment IS a counterexample input vector.
        print(f"{name}: NOT equivalent (counterexample found)")
        return

    report = DepthFirstChecker(formula, writer.to_trace()).check()
    verdict = "equivalent (proof VERIFIED)" if report.verified else "PROOF REJECTED"
    print(
        f"{name}: {verdict} — {result.stats.conflicts} conflicts, "
        f"checker built {report.clauses_built}/{report.total_learned} learned "
        f"clauses ({report.built_pct:.0f}%)"
    )
    assert report.verified


def main() -> None:
    # 1. Two adder architectures computing the same function.
    check_equivalence(
        "ripple-carry vs carry-select adder (8 bit)",
        ripple_carry_adder(8),
        carry_select_adder(8, block=3),
    )

    # 2. A random logic block vs its De Morgan / double-negation rewrite —
    #    the c5135/c7225-style industrial CEC workload.
    original = random_circuit(num_inputs=10, num_gates=80, num_outputs=4, seed=42)
    check_equivalence(
        "random logic vs semantics-preserving rewrite",
        original,
        rewritten_copy(original, seed=43),
    )

    # 3. A genuinely different circuit: the miter is SAT and the solver's
    #    model is a concrete distinguishing input (checkable in linear time).
    check_equivalence(
        "two unrelated random circuits",
        random_circuit(8, 30, 2, seed=1),
        random_circuit(8, 30, 2, seed=2),
    )


if __name__ == "__main__":
    main()
