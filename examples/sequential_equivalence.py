"""Sequential equivalence checking, refereed by an independent engine.

Two encodings of the same mod-4 counter — binary and Gray — drive the
same enable. Observed through a "count == 3" decoder register they are
equivalent; observed bit-by-bit they are not. Both verdicts come from the
SAT stack (interpolation proof / validated counterexample) and are
cross-checked against exact BDD reachability.

Run:  python examples/sequential_equivalence.py
"""

from repro.apps import check_sequential_equivalence
from repro.apps.sec import build_product_system
from repro.bdd import symbolic_reachability
from repro.circuits import Circuit, Register, SequentialCircuit


def binary_counter() -> SequentialCircuit:
    core = Circuit(name="binary")
    b0, b1, done = core.add_input(), core.add_input(), core.add_input()
    enable = core.add_input()
    n0 = core.xor(b0, enable)
    n1 = core.xor(b1, core.and_(b0, enable))
    next_done = core.and_(n0, n1)  # decoder register: count == 3
    return SequentialCircuit(
        core=core,
        registers=[
            Register(output=b0, next_input=n0),
            Register(output=b1, next_input=n1),
            Register(output=done, next_input=next_done),
        ],
        num_primary_inputs=1,
    )


def gray_counter() -> SequentialCircuit:
    core = Circuit(name="gray")
    g0, g1, done = core.add_input(), core.add_input(), core.add_input()
    enable = core.add_input()
    # Gray cycle 00 -> 01 -> 11 -> 10 (g0 = low bit).
    n0 = core.mux(enable, g0, core.not_(g1))
    n1 = core.mux(enable, g1, g0)
    next_done = core.and_(n1, core.not_(n0))  # Gray code of 3 is 10
    return SequentialCircuit(
        core=core,
        registers=[
            Register(output=g0, next_input=n0),
            Register(output=g1, next_input=n1),
            Register(output=done, next_input=next_done),
        ],
        num_primary_inputs=1,
    )


def main() -> None:
    left, right = binary_counter(), gray_counter()

    # 1. Observing only the decoder register (index 2): equivalent.
    result = check_sequential_equivalence(
        left, right, observed_left=[2], observed_right=[2], bound=8
    )
    assert result.equivalent is True
    how = "unbounded interpolation proof" if result.proved_unbounded else "bounded"
    print(f"observing the 'count==3' register: EQUIVALENT ({how})")

    system = build_product_system(left, right, observed_left=[2], observed_right=[2])
    exact = symbolic_reachability(system, stop_at_bad=False)
    assert not exact.bad_reachable
    print(
        f"  BDD referee agrees: {exact.num_reachable_states} reachable "
        "product states, none with disagreeing observers\n"
    )

    # 2. Observing the raw counter bits: the encodings differ.
    result = check_sequential_equivalence(
        left, right, observed_left=[0, 1], observed_right=[0, 1], bound=8
    )
    assert result.equivalent is False
    run = result.distinguishing_run
    print(
        f"observing the raw bits: NOT equivalent — distinguishing input "
        f"sequence of {run.length} cycle(s), replayed through both machines"
    )
    exact = symbolic_reachability(
        build_product_system(left, right, observed_left=[0, 1], observed_right=[0, 1])
    )
    assert exact.shortest_counterexample is not None
    print(
        f"  BDD referee agrees: exact shortest distinguishing run = "
        f"{exact.shortest_counterexample} cycle(s)"
    )
    assert run.length == exact.shortest_counterexample


if __name__ == "__main__":
    main()
