"""Quickstart: solve a formula, validate the answer — both directions.

Run:  python examples/quickstart.py
"""

from repro.checker import BreadthFirstChecker, DepthFirstChecker, check_model
from repro.cnf import CnfFormula, parse_dimacs
from repro.solver import SolverConfig, solve_formula
from repro.trace import InMemoryTraceWriter


def main() -> None:
    # -- A satisfiable formula: verify the model -------------------------------
    sat_formula = parse_dimacs(
        """\
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
"""
    )
    result = solve_formula(sat_formula)
    print(f"satisfiable formula -> {result.status}, model {result.model}")
    assert check_model(sat_formula, result.model), "model must satisfy the formula"
    print("model verified in linear time (the easy direction)\n")

    # -- An unsatisfiable formula: verify the proof ----------------------------
    # The pigeonhole principle with 4 pigeons and 3 holes.
    unsat_formula = CnfFormula(12)
    holes = 3
    for pigeon in range(4):
        unsat_formula.add_clause([pigeon * holes + hole + 1 for hole in range(holes)])
    for hole in range(holes):
        for p1 in range(4):
            for p2 in range(p1 + 1, 4):
                unsat_formula.add_clause([-(p1 * holes + hole + 1), -(p2 * holes + hole + 1)])

    trace_writer = InMemoryTraceWriter()
    result = solve_formula(unsat_formula, SolverConfig(seed=0), trace_writer=trace_writer)
    print(f"pigeonhole(4,3) -> {result.status} after {result.stats.conflicts} conflicts")

    trace = trace_writer.to_trace()
    for checker in (
        DepthFirstChecker(unsat_formula, trace),
        BreadthFirstChecker(unsat_formula, trace),
    ):
        report = checker.check()
        print(report.summary())
        assert report.verified

    df_report = DepthFirstChecker(unsat_formula, trace).check()
    print(
        f"\nbyproduct: the proof touches {len(df_report.original_core)} of "
        f"{unsat_formula.num_clauses} original clauses (an unsatisfiable core)"
    )


if __name__ == "__main__":
    main()
