"""From checked proofs to unbounded proofs: interpolation model checking.

BMC answers "safe up to k"; interpolants extracted from the checked
resolution proofs turn that into "safe for every k" by iterating
overapproximate images to a fixed point (McMillan, CAV 2003). Every UNSAT
along the way is certified by the resolution checker; every
counterexample is replayed through the transition circuit.

Run:  python examples/unbounded_model_checking.py
"""

from repro.apps import BoundedModelChecker, InterpolationModelChecker
from repro.bmc import counter_system, lfsr_system, token_ring_system


def main() -> None:
    # 1. The token-ring mutual-exclusion invariant: BMC can only push the
    #    bound; interpolation closes the argument for all depths.
    system = token_ring_system(5)
    bounded = BoundedModelChecker(system).run(max_bound=4)
    print(
        f"token ring, BMC: safe through bound {bounded.safe_through} "
        "(says nothing about bound 5+)"
    )
    unbounded = InterpolationModelChecker(system).prove(max_bound=6)
    assert unbounded.status == "proved"
    print(
        f"token ring, ITP: PROVED for all depths "
        f"(k={unbounded.bound_used}, {unbounded.image_iterations} images, "
        f"invariant circuit: {unbounded.fixed_point_frontier.num_gates} gates)\n"
    )

    # 2. The LFSR never reaches zero — an XOR-heavy invariant.
    result = InterpolationModelChecker(lfsr_system(5)).prove(max_bound=8)
    assert result.status == "proved"
    print(
        f"LFSR(5) != 0: PROVED for all depths "
        f"(k={result.bound_used}, {result.image_iterations} images)\n"
    )

    # 3. A real failure is still found, exactly at its depth.
    system = counter_system(4, bad_value=6)
    result = InterpolationModelChecker(system).prove(max_bound=10)
    assert result.status == "counterexample"
    print(
        f"counter reaches 6: counterexample of length "
        f"{result.counterexample.length} (validated by replaying the "
        "transition circuit)"
    )


if __name__ == "__main__":
    main()
