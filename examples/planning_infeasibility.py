"""Why is there no feasible plan? Ask the unsat core (§4).

"In AI planning, a satisfiable solution corresponds to a feasible
scheduling. The unsatisfiable core gives the information about why no
scheduling is feasible."

Two scenarios: a horizon just too short (the core traces the distance
argument), and a goal that is *structurally* impossible — two agents
cannot swap places on a corridor — where the core survives any horizon.

Run:  python examples/planning_infeasibility.py
"""

from repro.core_extract import extract_core, iterate_core
from repro.generators import grid_planning, swap_planning
from repro.solver import solve_formula


def main() -> None:
    # 1. Horizon one step short of the Manhattan distance on a 4x4 grid.
    formula = grid_planning(4, 4)  # default horizon = distance - 1
    result = solve_formula(formula)
    print(f"4x4 grid, horizon distance-1: {result.status}")
    core = extract_core(formula)
    print(
        f"  core: {core.num_clauses}/{formula.num_clauses} clauses — the "
        "distance argument, without the untouched parts of the grid"
    )

    # A horizon with slack is feasible: the solver hands back the plan.
    feasible = grid_planning(4, 4, horizon=6)
    result = solve_formula(feasible)
    steps = sorted(
        (var - 1) // 16 for var, value in result.model.items() if value and var <= feasible.num_vars
    )
    print(f"4x4 grid, horizon 6: {result.status} (a concrete plan exists)\n")

    # 2. Two agents must swap ends of a corridor: impossible at ANY horizon.
    formula = swap_planning(path_length=4, horizon=9)
    result = solve_formula(formula)
    print(f"corridor swap, horizon 9: {result.status}")
    outcome = iterate_core(formula, max_iterations=15)
    first = outcome.first_iteration
    final = outcome.final
    print(
        f"  core shrinks {outcome.iterations[0][0]} -> {first[0]} -> {final[0]} "
        f"clauses over {outcome.num_iterations} iterations"
    )
    print(
        "  the surviving clauses are the no-passing constraints — the "
        "*reason* the schedule is infeasible"
    )


if __name__ == "__main__":
    main()
