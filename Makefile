# Convenience targets. Everything is plain pytest / python -m underneath.

.PHONY: install test lint check bench bench-parallel bench-kernel bench-supervisor bench-service bench-analysis bench-streaming bench-chaos bench-drat chaos-drill tables tables-large ablations export examples clean

install:
	pip install -e .

test:
	pytest tests/

lint:
	python tools/lint.py

# What CI runs: static analysis of the codebase, then the tier-1 suite.
check: lint test

bench:
	pytest benchmarks/ --benchmark-only

# Parallel windowed checker vs. DF/BF; writes results/BENCH_parallel.json.
# Use REPRO_BENCH_SCALE=large for the multi-second instances.
bench-parallel:
	pytest benchmarks/bench_parallel.py

# Resolution kernel vs. frozenset oracle (decode, chain resolve, end-to-end
# per checker); writes results/BENCH_kernel.json and fails if the
# breadth-first end-to-end speedup drops below 2x. `--quick` for CI smoke.
bench-kernel:
	python benchmarks/bench_kernel.py

# Fault-free overhead of the checking supervisor (deadline polling +
# wrapper) vs a bare breadth-first check; writes
# results/BENCH_supervisor.json and fails if overhead exceeds 5%.
bench-supervisor:
	python benchmarks/bench_supervisor.py

# Checking service: cold vs warm verdict-cache check and queue throughput
# at 1/2/4 workers; writes results/BENCH_service.json and fails if the
# warm-cache speedup drops below 10x. `--quick` for CI smoke.
bench-service:
	python benchmarks/bench_service.py

# Graph analyzer cost + core-first pruning payoff on a dead-lemma-heavy
# trace; writes results/BENCH_analysis.json and fails if the pruned BF
# speedup drops below 1.3x or the analyzer pass costs >= 10% of the
# unpruned check. `--quick` for CI smoke.
bench-analysis:
	python benchmarks/bench_analysis.py

# Fault-free overhead of the fault-injection plane (unarmed probes on the
# journal + verdict-cache bookkeeping paths); writes
# results/BENCH_chaos.json and fails if attributed overhead exceeds 2%.
# `--quick` for CI smoke.
bench-chaos:
	python benchmarks/bench_chaos.py

# The full chaos drill: SIGKILL / torn-write / ENOSPC injected at every
# registered fault point of the checking service, asserting exactly-once
# verdicts and clean recovery.
chaos-drill:
	python -m pytest -x -q tests/service/test_faults.py tests/service/test_chaos.py

# Constant-memory gate for the streaming shifting-window checker: flat
# peak residency across 1x/3x/10x generated traces, time within 1.5x of
# BF, and the supervisor ladder landing on the streaming tier; writes
# results/BENCH_streaming.json. `--quick` for CI smoke.
bench-streaming:
	python benchmarks/bench_streaming.py

# DRAT forward vs backward (core-first) checking on a generated fixture;
# writes results/BENCH_drat.json and fails if backward skips < 30% of add
# steps or takes longer than forward. `--quick` for CI smoke.
bench-drat:
	python benchmarks/bench_drat.py

tables:
	python -m repro.experiments all --scale medium

tables-large:
	python -m repro.experiments all --scale large

ablations:
	python -m repro.experiments ablations --scale medium

export:
	python -m repro.experiments export --scale medium --out-dir suite-export

examples:
	@for ex in examples/*.py; do echo "== $$ex"; python $$ex || exit 1; done

clean:
	rm -rf .pytest_cache suite-export **/__pycache__
